#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "algorithms/betweenness.h"
#include "algorithms/bfs_components.h"
#include "algorithms/closeness.h"
#include "algorithms/eccentricity.h"
#include "algorithms/khop.h"
#include "algorithms/parents.h"
#include "bfs/sequential.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "test_util.h"

namespace pbfs {
namespace {

// ---------------------------------------------------------------------
// Closeness centrality.
// ---------------------------------------------------------------------

TEST(ClosenessTest, ExactOnPath) {
  // Path 0-1-2-3-4: farness of middle = 1+2+1+2 = 6, of ends = 10.
  Graph g = Path(5);
  SerialExecutor serial;
  ClosenessResult r = ComputeCloseness(g, &serial, {});
  EXPECT_EQ(r.sources_used, 5u);
  EXPECT_DOUBLE_EQ(r.score[2], 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(r.score[0], 4.0 / 10.0);
  EXPECT_DOUBLE_EQ(r.score[4], r.score[0]);
  EXPECT_GT(r.score[2], r.score[1]);
  EXPECT_GT(r.score[1], r.score[0]);
}

TEST(ClosenessTest, StarCenterIsMostCentral) {
  Graph g = Star(32);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  ClosenessResult r = ComputeCloseness(g, &pool, {});
  std::vector<Vertex> top = TopKByScore(r.score, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);
  // Center: farness 31; leaves: 1 + 2*30 = 61.
  EXPECT_DOUBLE_EQ(r.score[0], 31.0 / 31.0);
  EXPECT_DOUBLE_EQ(r.score[1], 31.0 / 61.0);
}

TEST(ClosenessTest, IsolatedVerticesScoreZero) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{0, 1}});
  SerialExecutor serial;
  ClosenessResult r = ComputeCloseness(g, &serial, {});
  EXPECT_GT(r.score[0], 0.0);
  EXPECT_EQ(r.score[2], 0.0);
  EXPECT_EQ(r.score[4], 0.0);
}

TEST(ClosenessTest, WideBatchesMatchNarrow) {
  Graph g = SocialNetwork({.num_vertices = 300, .avg_degree = 6.0,
                           .seed = 3});
  SerialExecutor serial;
  ClosenessOptions narrow;
  narrow.width = 64;
  ClosenessOptions wide;
  wide.width = 256;
  ClosenessResult a = ComputeCloseness(g, &serial, narrow);
  ClosenessResult b = ComputeCloseness(g, &serial, wide);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(a.score[v], b.score[v]) << v;
  }
}

TEST(ClosenessTest, SampledModeRanksHubsHighly) {
  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 12.0,
                           .seed = 5});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  ClosenessOptions options;
  options.sample_sources = 256;
  ClosenessResult sampled = ComputeCloseness(g, &pool, options);
  EXPECT_EQ(sampled.sources_used, 256u);
  ClosenessResult exact = ComputeCloseness(g, &pool, {});
  // The top-10 exact vertices should mostly appear in the sampled
  // top-50.
  std::vector<Vertex> top_exact = TopKByScore(exact.score, 10);
  std::vector<Vertex> top_sampled = TopKByScore(sampled.score, 50);
  int found = 0;
  for (Vertex v : top_exact) {
    if (std::find(top_sampled.begin(), top_sampled.end(), v) !=
        top_sampled.end()) {
      ++found;
    }
  }
  EXPECT_GE(found, 5);
}

TEST(TopKByScoreTest, OrdersAndTruncates) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.0};
  std::vector<Vertex> top = TopKByScore(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_TRUE(TopKByScore(scores, 0).empty());
  EXPECT_EQ(TopKByScore(scores, 100).size(), 5u);
}

TEST(HarmonicTest, PathValues) {
  // Path 0-1-2: harmonic(1) = 1/1 + 1/1 = 2; harmonic(0) = 1 + 1/2.
  Graph g = Path(3);
  SerialExecutor serial;
  ClosenessResult r = ComputeCloseness(g, &serial, {});
  EXPECT_DOUBLE_EQ(r.harmonic[1], 2.0);
  EXPECT_DOUBLE_EQ(r.harmonic[0], 1.5);
  EXPECT_DOUBLE_EQ(r.harmonic[2], 1.5);
}

TEST(HarmonicTest, DefinedOnDisconnectedGraphs) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  SerialExecutor serial;
  ClosenessResult r = ComputeCloseness(g, &serial, {});
  for (Vertex v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(r.harmonic[v], 1.0);
}

// ---------------------------------------------------------------------
// Betweenness centrality.
// ---------------------------------------------------------------------

TEST(BetweennessTest, PathCenterDominates) {
  // Path 0-1-2-3-4: scores are 0, 3, 4, 3, 0.
  Graph g = Path(5);
  SerialExecutor serial;
  BetweennessResult r = ComputeBetweenness(g, &serial, {});
  EXPECT_DOUBLE_EQ(r.score[0], 0.0);
  EXPECT_DOUBLE_EQ(r.score[1], 3.0);
  EXPECT_DOUBLE_EQ(r.score[2], 4.0);
  EXPECT_DOUBLE_EQ(r.score[3], 3.0);
  EXPECT_DOUBLE_EQ(r.score[4], 0.0);
}

TEST(BetweennessTest, StarCenterCarriesAllPairs) {
  // Star with k leaves: center lies on all C(k,2) leaf pairs.
  Graph g = Star(9);  // 8 leaves
  SerialExecutor serial;
  BetweennessResult r = ComputeBetweenness(g, &serial, {});
  EXPECT_DOUBLE_EQ(r.score[0], 28.0);  // C(8,2)
  for (Vertex v = 1; v < 9; ++v) EXPECT_DOUBLE_EQ(r.score[v], 0.0);
}

TEST(BetweennessTest, CycleSplitsPathsEvenly) {
  // Even cycle: by symmetry all vertices have equal betweenness.
  Graph g = Cycle(8);
  SerialExecutor serial;
  BetweennessResult r = ComputeBetweenness(g, &serial, {});
  for (Vertex v = 1; v < 8; ++v) {
    EXPECT_NEAR(r.score[v], r.score[0], 1e-9);
  }
  EXPECT_GT(r.score[0], 0.0);
}

TEST(BetweennessTest, ParallelMatchesSerial) {
  Graph g = SocialNetwork({.num_vertices = 512, .avg_degree = 8.0,
                           .seed = 21});
  SerialExecutor serial;
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  BetweennessResult a = ComputeBetweenness(g, &serial, {});
  BetweennessResult b = ComputeBetweenness(g, &pool, {});
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(a.score[v], b.score[v], 1e-6) << v;
  }
}

TEST(BetweennessTest, SampledEstimatesCorrelate) {
  Graph g = SocialNetwork({.num_vertices = 1024, .avg_degree = 10.0,
                           .seed = 33});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  BetweennessResult exact = ComputeBetweenness(g, &pool, {});
  BetweennessOptions sampled_options;
  sampled_options.sample_sources = 256;
  BetweennessResult sampled = ComputeBetweenness(g, &pool, sampled_options);
  EXPECT_EQ(sampled.sources_used, 256u);
  // The exact top vertex should rank inside the sampled top-20.
  std::vector<Vertex> top_exact = TopKByScore(exact.score, 1);
  std::vector<Vertex> top_sampled = TopKByScore(sampled.score, 20);
  EXPECT_NE(std::find(top_sampled.begin(), top_sampled.end(), top_exact[0]),
            top_sampled.end());
}

// ---------------------------------------------------------------------
// Parents.
// ---------------------------------------------------------------------

TEST(ParentsTest, DeriveAndValidateOnVariousGraphs) {
  Graph graphs[] = {Path(40), Grid(9, 7), Star(17), BinaryTree(63),
                    Kronecker({.scale = 9, .edge_factor = 8, .seed = 2})};
  SerialExecutor serial;
  for (const Graph& g : graphs) {
    std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
    std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
    std::string error;
    EXPECT_TRUE(ValidateParents(g, 0, parents, levels.data(), &error))
        << error;
    std::vector<Vertex> parallel =
        DeriveParentsParallel(g, 0, levels.data(), &serial);
    EXPECT_TRUE(ValidateParents(g, 0, parallel, levels.data(), &error))
        << error;
  }
}

TEST(ParentsTest, SourceIsOwnParent) {
  Graph g = Cycle(10);
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 3);
  std::vector<Vertex> parents = DeriveParents(g, 3, levels.data());
  EXPECT_EQ(parents[3], 3u);
}

TEST(ParentsTest, UnreachedHaveNoParent) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}});
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
  std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
  EXPECT_EQ(parents[2], kInvalidVertex);
  EXPECT_EQ(parents[3], kInvalidVertex);
  std::string error;
  EXPECT_TRUE(ValidateParents(g, 0, parents, levels.data(), &error)) << error;
}

TEST(ParentsTest, ValidationCatchesNonNeighborParent) {
  Graph g = Path(5);
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
  std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
  parents[4] = 0;  // not adjacent to 4
  EXPECT_FALSE(ValidateParents(g, 0, parents, levels.data(), nullptr));
}

TEST(ParentsTest, ValidationCatchesCycle) {
  Graph g = Cycle(6);
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
  std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
  // 2 -> 3 -> 2 cycle (both adjacent in the cycle graph).
  parents[2] = 3;
  parents[3] = 2;
  EXPECT_FALSE(ValidateParents(g, 0, parents, nullptr, nullptr));
}

TEST(ParentsTest, ValidationCatchesWrongLevelEdge) {
  Graph g = Cycle(8);
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
  std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
  // Vertex 3 (level 3) reparented to 4 (level 4): valid tree edge shape
  // but wrong direction w.r.t. levels.
  parents[3] = 4;
  EXPECT_FALSE(ValidateParents(g, 0, parents, levels.data(), nullptr));
}

TEST(ParentsTest, ValidationCatchesWrongSourceParent) {
  Graph g = Path(3);
  std::vector<Level> levels = testing_util::ReferenceLevels(g, 0);
  std::vector<Vertex> parents = DeriveParents(g, 0, levels.data());
  parents[0] = 1;
  EXPECT_FALSE(ValidateParents(g, 0, parents, levels.data(), nullptr));
}

// ---------------------------------------------------------------------
// Eccentricity / diameter.
// ---------------------------------------------------------------------

TEST(EccentricityTest, ExactOnPath) {
  Graph g = Path(7);  // eccentricities: 6 5 4 3 4 5 6
  SerialExecutor serial;
  std::vector<Level> ecc = ExactEccentricities(g, &serial);
  EXPECT_EQ(ecc, (std::vector<Level>{6, 5, 4, 3, 4, 5, 6}));
}

TEST(EccentricityTest, ExactOnCycleAndStar) {
  SerialExecutor serial;
  std::vector<Level> cycle_ecc = ExactEccentricities(Cycle(10), &serial);
  for (Level e : cycle_ecc) EXPECT_EQ(e, 5);
  std::vector<Level> star_ecc = ExactEccentricities(Star(9), &serial);
  EXPECT_EQ(star_ecc[0], 1);
  for (Vertex v = 1; v < 9; ++v) EXPECT_EQ(star_ecc[v], 2);
}

TEST(EccentricityTest, IsolatedVertexUnreached) {
  Graph g = Graph::FromEdges(3, std::vector<Edge>{{0, 1}});
  SerialExecutor serial;
  std::vector<Level> ecc = ExactEccentricities(g, &serial);
  EXPECT_EQ(ecc[0], 1);
  EXPECT_EQ(ecc[2], kLevelUnreached);
}

TEST(DiameterTest, DoubleSweepExactOnTreesAndPaths) {
  SerialExecutor serial;
  DiameterEstimate path = EstimateDiameter(Path(50), 25, &serial);
  EXPECT_EQ(path.lower_bound, 49);
  DiameterEstimate tree = EstimateDiameter(BinaryTree(127), 0, &serial);
  EXPECT_EQ(tree.lower_bound, 12);  // leaf-to-leaf through the root
}

TEST(DiameterTest, LowerBoundNeverExceedsTrueDiameter) {
  SerialExecutor serial;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = ErdosRenyi(300, 900, seed);
    std::vector<Level> ecc = ExactEccentricities(g, &serial);
    Level diameter = 0;
    for (Level e : ecc) {
      if (e != kLevelUnreached) diameter = std::max(diameter, e);
    }
    DiameterEstimate est = EstimateDiameter(g, PickSources(g, 1, seed)[0],
                                            &serial, 6);
    EXPECT_LE(est.lower_bound, diameter) << "seed " << seed;
    EXPECT_GE(est.lower_bound, (diameter + 1) / 2) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// k-hop neighborhoods.
// ---------------------------------------------------------------------

TEST(KHopTest, GridNeighborhoodSizes) {
  // Interior vertex of a large grid: |N_1|=4, |N_2|=12, |N_3|=24
  // (cumulative: 4, 12+4=... manhattan ball sizes 2k(k+1)).
  Graph g = Grid(21, 21);
  Vertex center = 10 * 21 + 10;
  SerialExecutor serial;
  std::vector<Vertex> queries = {center};
  KHopResult r = KHopNeighborhoods(g, queries, 3, &serial);
  ASSERT_EQ(r.size.size(), 1u);
  EXPECT_EQ(r.size[0][0], 0u);
  EXPECT_EQ(r.size[0][1], 4u);
  EXPECT_EQ(r.size[0][2], 12u);
  EXPECT_EQ(r.size[0][3], 24u);
}

TEST(KHopTest, MatchesReferenceLevels) {
  Graph g = SocialNetwork({.num_vertices = 1024, .avg_degree = 8.0,
                           .seed = 9});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  std::vector<Vertex> queries = PickSources(g, 100, 3);  // > one batch
  KHopResult r = KHopNeighborhoods(g, queries, 4, &pool);
  ASSERT_EQ(r.size.size(), queries.size());
  for (size_t q = 0; q < queries.size(); q += 17) {
    std::vector<Level> ref = testing_util::ReferenceLevels(g, queries[q]);
    for (Level h = 1; h <= 4; ++h) {
      uint64_t expected = 0;
      for (Level l : ref) {
        if (l != kLevelUnreached && l >= 1 && l <= h) ++expected;
      }
      EXPECT_EQ(r.size[q][h], expected) << "query " << q << " hop " << h;
    }
  }
}

// ---------------------------------------------------------------------
// BFS-based connected components.
// ---------------------------------------------------------------------

TEST(BfsComponentsTest, MatchesUnionFind) {
  SerialExecutor serial;
  Graph graphs[] = {Graph::FromEdges(9, std::vector<Edge>{{0, 1},
                                                          {1, 2},
                                                          {3, 4},
                                                          {5, 6},
                                                          {6, 7}}),
                    Kronecker({.scale = 10, .edge_factor = 4, .seed = 7}),
                    ErdosRenyi(512, 300, 5)};
  for (const Graph& g : graphs) {
    ComponentInfo by_bfs = ComputeComponentsByBfs(g, &serial);
    ComponentInfo by_uf = ComputeComponents(g);
    ASSERT_EQ(by_bfs.num_components(), by_uf.num_components());
    // Same partition (ids may differ): equal component_of equivalence.
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      for (Vertex v : g.Neighbors(u)) {
        EXPECT_EQ(by_bfs.component_of[u], by_bfs.component_of[v]);
      }
      EXPECT_EQ(by_bfs.vertex_count[by_bfs.component_of[u]],
                by_uf.vertex_count[by_uf.component_of[u]]);
      EXPECT_EQ(by_bfs.edge_count[by_bfs.component_of[u]],
                by_uf.edge_count[by_uf.component_of[u]]);
    }
  }
}

TEST(BfsComponentsTest, IsolatedVerticesAreSingletons) {
  Graph g = Graph::FromEdges(5, std::vector<Edge>{{1, 2}});
  SerialExecutor serial;
  ComponentInfo info = ComputeComponentsByBfs(g, &serial);
  EXPECT_EQ(info.num_components(), 4u);
  EXPECT_EQ(info.vertex_count[info.component_of[0]], 1u);
  EXPECT_EQ(info.vertex_count[info.component_of[1]], 2u);
}

}  // namespace
}  // namespace pbfs
