// Snapshot-consistency edge cases for the dynamic query engine
// (satellite of the replay harness in dynamic_replay_test.cc).
//
// Verifies the admission-time pinning contract under adversarial
// timing: a query admitted before ApplyUpdates must traverse the old
// snapshot even when compaction completes while it is still queued;
// Cancel() and Drain() must not block on an in-flight compaction; and
// the engine destructor must cleanly stop a compactor mid-compaction.
// Compaction timing is made deterministic with
// compactor_debug_delay_ms fault injection.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"

namespace pbfs {
namespace {

Query LevelsQuery(Vertex source) {
  Query query;
  query.type = QueryType::kLevels;
  query.source = source;
  return query;
}

// The headline consistency guarantee: a query admitted before an update
// batch sees the pre-update snapshot even if the batch is published AND
// compacted into a fresh CSR before the query is dispatched. The
// result is deterministic regardless of dispatch timing because the
// snapshot is pinned at admission, not at dispatch.
TEST(SnapshotConsistencyTest, AdmittedBeforeUpdateSeesOldSnapshot) {
  const Vertex n = 64;
  Graph graph = Path(n);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  // Long linger: the query normally stays queued across the whole
  // update + compaction sequence below.
  options.coalesce_wait_ms = 250;
  QueryEngine engine(graph, &pool, options);

  QueryEngine::Submission before = engine.Submit(LevelsQuery(0));

  // Disconnect the source, publish, and compact to a fresh CSR.
  const std::vector<EdgeUpdate> cut = {{0, 1, /*insert=*/false}};
  ASSERT_EQ(engine.ApplyUpdates(cut), 2u);
  engine.WaitCompactorIdle();
  ASSERT_GE(engine.CompactorStats().compactions, 1u);
  ASSERT_GE(engine.SnapshotInfo().compact_swaps, 1u);

  QueryResult old_result = before.result.get();
  ASSERT_EQ(old_result.status, QueryStatus::kOk);
  EXPECT_EQ(old_result.snapshot_version, 1u);
  EXPECT_EQ(old_result.vertices_reached, static_cast<uint64_t>(n));
  ASSERT_EQ(old_result.levels.size(), static_cast<size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(old_result.levels[v], static_cast<Level>(v)) << "vertex " << v;
  }

  // A query admitted after the update sees the cut chain.
  QueryResult new_result = engine.Submit(LevelsQuery(0)).result.get();
  ASSERT_EQ(new_result.status, QueryStatus::kOk);
  EXPECT_EQ(new_result.snapshot_version, 2u);
  EXPECT_EQ(new_result.vertices_reached, 1u);
}

// Cancel() and Drain() concern queued queries only; neither may block
// on the compactor. With a 1s injected compaction delay, both return
// while the compaction is still in flight.
TEST(SnapshotConsistencyTest, CancelAndDrainDuringInFlightCompaction) {
  Graph graph = ErdosRenyi(256, 512, /*seed=*/11);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.coalesce_wait_ms = 1000;  // keep the query queued
  options.compactor_debug_delay_ms = 1000;
  QueryEngine engine(graph, &pool, options);

  QueryEngine::Submission sub = engine.Submit(LevelsQuery(0));
  const std::vector<EdgeUpdate> batch = {{1, 200, /*insert=*/true}};
  ASSERT_EQ(engine.ApplyUpdates(batch), 2u);

  EXPECT_TRUE(engine.Cancel(sub.id));
  EXPECT_EQ(sub.result.get().status, QueryStatus::kCancelled);
  engine.Drain();
  // Drain returned while the compactor was still sleeping inside its
  // injected delay.
  EXPECT_EQ(engine.CompactorStats().compactions, 0u);

  engine.WaitCompactorIdle();
  EXPECT_GE(engine.CompactorStats().compactions, 1u);
  EXPECT_EQ(engine.SnapshotInfo().overlay_patched_vertices, 0u);
}

// Destroying the engine while a compaction is mid-flight must stop the
// dispatcher and join the compactor without deadlock or leak (ASan/TSan
// legs make this assertion meaningful).
TEST(SnapshotConsistencyTest, DestructorDuringInFlightCompaction) {
  Graph graph = ErdosRenyi(256, 512, /*seed=*/13);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  {
    QueryEngineOptions options;
    options.compactor_debug_delay_ms = 200;
    QueryEngine engine(graph, &pool, options);
    const std::vector<EdgeUpdate> batch = {{2, 100, /*insert=*/true}};
    engine.ApplyUpdates(batch);
    // Engine destructs here, compactor still sleeping.
  }
}

// Version bookkeeping across a publish/compact/reclaim cycle: versions
// are monotone, content versions count exactly the update batches,
// compaction leaves no overlay behind, and retired snapshots drain to
// zero once the dispatcher rebinds off the old snapshot.
TEST(SnapshotConsistencyTest, VersionsAdvanceAndRetiredSnapshotsDrain) {
  Graph graph = ErdosRenyi(128, 256, /*seed=*/17);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.coalesce_wait_ms = 0;
  QueryEngine engine(graph, &pool, options);

  // Before any update: WaitCompactorIdle is a no-op and the compactor
  // was never started.
  engine.WaitCompactorIdle();
  EXPECT_EQ(engine.CompactorStats().compactions, 0u);
  SnapshotStats info = engine.SnapshotInfo();
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.content_version, 1u);
  EXPECT_EQ(info.retired, 0u);

  uint64_t last_version = info.version;
  for (uint64_t k = 0; k < 3; ++k) {
    const Vertex u = static_cast<Vertex>(k);
    const std::vector<EdgeUpdate> batch = {
        {u, static_cast<Vertex>(u + 50), /*insert=*/true},
        {u, static_cast<Vertex>(u + 51), /*insert=*/true},
    };
    ASSERT_EQ(engine.ApplyUpdates(batch), 2 + k);
    info = engine.SnapshotInfo();
    EXPECT_EQ(info.content_version, 2 + k);
    EXPECT_GT(info.version, last_version);
    last_version = info.version;
    EXPECT_EQ(info.publishes, k + 1);
  }
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.update_batches, 3u);
  EXPECT_EQ(stats.edge_updates_applied, 6u);

  engine.WaitCompactorIdle();
  info = engine.SnapshotInfo();
  EXPECT_EQ(info.content_version, 4u);  // swaps keep the content version
  EXPECT_EQ(info.overlay_patched_vertices, 0u);
  EXPECT_EQ(info.overlay_edge_delta, 0);
  EXPECT_GE(info.compact_swaps, 1u);

  // The dispatcher still pins the construction-time snapshot for its
  // cached kernels; one traversal rebinds it to the compacted snapshot,
  // after which every retired snapshot's epoch can drain. The batch's
  // own pin is dropped on the dispatcher thread shortly after the
  // future resolves, hence the poll.
  QueryResult result = engine.Submit(LevelsQuery(0)).result.get();
  ASSERT_EQ(result.status, QueryStatus::kOk);
  EXPECT_EQ(result.snapshot_version, 4u);
  for (int i = 0; i < 500 && engine.SnapshotInfo().retired != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  info = engine.SnapshotInfo();
  EXPECT_EQ(info.retired, 0u);
  EXPECT_GE(info.reclaimed, 1u);
}

}  // namespace
}  // namespace pbfs
