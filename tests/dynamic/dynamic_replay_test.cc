// Differential update/query replay harness for the dynamic-graph
// substrate.
//
// Each trial derives one randomized interleaving of edge-update batches
// and typed queries from a seed (MakeSchedule), replays it against a
// live QueryEngine, and diffs every result against the sequential
// rebuild-CSR-then-BFS oracle for the graph state identified by the
// result's snapshot_version stamp. Four replay modes: serial
// (deterministic version checks), concurrent (updater thread racing
// client threads), and the steal_heavy / starvation perturbation
// schedules on top of the concurrent mode. Together they replay >= 200
// interleavings per run at the default trial counts.
//
// Labeled dynamic + differential in CMake so the TSan and ASan+UBSan CI
// legs run it; see docs/testing.md. Failures print the PBFS_DIFF_SEED
// reproduction banner.

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_util.h"
#include "engine/query_engine.h"
#include "sched/steal_policy.h"
#include "sched/worker_pool.h"

namespace pbfs {
namespace {

using diff::ReproNote;
using dyn::DiffResult;
using dyn::MakeSchedule;
using dyn::QuerySpec;
using dyn::ReplayOracle;
using dyn::ReplaySchedule;
using dyn::ToQuery;

// Trial count for one replay mode: the mode's default, unless
// PBFS_DIFF_TRIALS overrides it (the repro workflow sets it to 1).
int ReplayTrials(int default_trials) {
  const uint64_t env = diff::EnvOr("PBFS_DIFF_TRIALS", 0);
  return env == 0 ? default_trials : static_cast<int>(env);
}

// Deterministic interleaving: queries scheduled after batch k are
// submitted and checked between ApplyUpdates calls k and k+1, so every
// snapshot_version stamp and ApplyUpdates return value is exactly
// predictable.
void SerialReplayTrial(WorkerPool* pool, uint64_t seed) {
  const ReplaySchedule sched = MakeSchedule(seed);
  ReplayOracle oracle(sched);
  const Graph graph = Graph::FromEdges(sched.n, sched.initial_edges);

  QueryEngineOptions options;
  options.coalesce_wait_ms = 0;
  QueryEngine engine(graph, pool, options);
  const uint64_t base_cv = engine.SnapshotInfo().content_version;
  ASSERT_EQ(base_cv, 1u);

  const int num_batches = static_cast<int>(sched.batches.size());
  for (int k = 0; k <= num_batches; ++k) {
    for (size_t q = 0; q < sched.queries.size(); ++q) {
      const QuerySpec& spec = sched.queries[q];
      if (spec.after_batches != k) continue;
      QueryEngine::Submission sub = engine.Submit(ToQuery(spec));
      const QueryResult result = sub.result.get();
      ASSERT_EQ(result.status, QueryStatus::kOk) << "query " << q;
      ASSERT_EQ(result.snapshot_version, base_cv + static_cast<uint64_t>(k))
          << "query " << q;
      const std::string mismatch = DiffResult(oracle.GraphAfter(k), spec,
                                              result);
      ASSERT_TRUE(mismatch.empty())
          << "query " << q << " (" << QueryTypeName(spec.type) << " from "
          << spec.source << ") after " << k << " batches: " << mismatch;
    }
    if (k < num_batches) {
      // MakeSchedule guarantees at least one non-self-loop op per
      // batch, so each batch publishes exactly one new content version.
      ASSERT_EQ(engine.ApplyUpdates(sched.batches[k]),
                base_cv + static_cast<uint64_t>(k) + 1);
    }
  }

  engine.Drain();
  engine.WaitCompactorIdle();
  const SnapshotStats snap = engine.SnapshotInfo();
  EXPECT_EQ(snap.content_version,
            base_cv + static_cast<uint64_t>(num_batches));
  EXPECT_EQ(snap.overlay_patched_vertices, 0u)
      << "compactor left deltas behind";

  // One final full-levels query confirms the compacted CSR equals the
  // oracle's final edge set end to end.
  QuerySpec final_spec;
  final_spec.type = QueryType::kLevels;
  final_spec.source = 0;
  QueryResult final_result = engine.Submit(ToQuery(final_spec)).result.get();
  ASSERT_EQ(final_result.status, QueryStatus::kOk);
  const std::string mismatch =
      DiffResult(oracle.GraphAfter(num_batches), final_spec, final_result);
  EXPECT_TRUE(mismatch.empty()) << "post-compaction: " << mismatch;
}

// Racy interleaving: one updater thread publishes the batch sequence
// while client threads submit the schedule's queries. Which snapshot a
// query lands on is nondeterministic, but the stamp in its result pins
// it to exactly one oracle prefix.
void ConcurrentReplayTrial(WorkerPool* pool, uint64_t seed) {
  const ReplaySchedule sched = MakeSchedule(seed);
  ReplayOracle oracle(sched);
  const Graph graph = Graph::FromEdges(sched.n, sched.initial_edges);

  QueryEngineOptions options;
  options.coalesce_wait_ms = 0.05;
  options.bfs.split_size = 64;  // small tasks so stealing happens
  QueryEngine engine(graph, pool, options);
  const uint64_t base_cv = engine.SnapshotInfo().content_version;
  const uint64_t num_batches = sched.batches.size();

  // A single updater keeps the snapshot_version -> batch-prefix mapping
  // exact: version base_cv + p holds precisely the first p batches.
  std::thread updater([&] {
    for (const std::vector<EdgeUpdate>& batch : sched.batches) {
      engine.ApplyUpdates(batch);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 3;
  std::vector<std::pair<size_t, QueryResult>> results[kClients];
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = static_cast<size_t>(c); q < sched.queries.size();
           q += kClients) {
        QueryEngine::Submission sub =
            engine.Submit(ToQuery(sched.queries[q]));
        results[c].emplace_back(q, sub.result.get());
      }
    });
  }
  updater.join();
  for (std::thread& t : clients) t.join();
  engine.Drain();

  for (int c = 0; c < kClients; ++c) {
    for (const auto& [q, result] : results[c]) {
      const QuerySpec& spec = sched.queries[q];
      ASSERT_EQ(result.status, QueryStatus::kOk) << "query " << q;
      ASSERT_GE(result.snapshot_version, base_cv) << "query " << q;
      ASSERT_LE(result.snapshot_version, base_cv + num_batches)
          << "query " << q;
      const int prefix = static_cast<int>(result.snapshot_version - base_cv);
      const std::string mismatch =
          DiffResult(oracle.GraphAfter(prefix), spec, result);
      ASSERT_TRUE(mismatch.empty())
          << "query " << q << " (" << QueryTypeName(spec.type) << " from "
          << spec.source << ") on snapshot prefix " << prefix << ": "
          << mismatch;
    }
  }

  const QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_admitted, sched.queries.size());
  EXPECT_EQ(stats.queries_completed, sched.queries.size());
  EXPECT_EQ(stats.update_batches, num_batches);
}

TEST(DynamicReplayTest, SerialReplayMatchesOracle) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  const int trials = ReplayTrials(70);
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = diff::TrialSeed(static_cast<uint64_t>(trial));
    SCOPED_TRACE(ReproNote(seed));
    SerialReplayTrial(&pool, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(DynamicReplayTest, ConcurrentReplayMatchesOracle) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  const int trials = ReplayTrials(70);
  for (int trial = 0; trial < trials; ++trial) {
    // Offset the trial index so the concurrent corpus differs from the
    // serial one under the same base seed.
    const uint64_t seed = diff::TrialSeed(1000 + static_cast<uint64_t>(trial));
    SCOPED_TRACE(ReproNote(seed));
    ConcurrentReplayTrial(&pool, seed);
    if (HasFatalFailure()) return;
  }
}

TEST(DynamicReplayTest, ConcurrentReplayUnderPerturbedSchedules) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  const int trials = ReplayTrials(30);
  for (const NamedStealPolicy& schedule : PerturbationSchedules()) {
    if (schedule.name != "steal_heavy" && schedule.name != "starvation") {
      continue;
    }
    // Installed between loops, before the engine's dispatcher exists.
    pool.SetStealPolicy(schedule.policy);
    for (int trial = 0; trial < trials; ++trial) {
      const uint64_t seed =
          diff::TrialSeed(2000 + static_cast<uint64_t>(trial));
      SCOPED_TRACE("policy=" + schedule.name + " " + ReproNote(seed));
      ConcurrentReplayTrial(&pool, seed);
      if (HasFatalFailure()) break;
    }
    pool.SetStealPolicy(nullptr);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace pbfs
