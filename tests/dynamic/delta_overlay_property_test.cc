// Property tests for the delta/overlay layer beneath the dynamic query
// engine (graph/delta.h, graph/snapshot.h).
//
// Core property: for any base CSR and any update sequence, the overlay
// view (base + frozen AdjacencyOverlay) must be observationally
// identical — Degree, Neighbors, num_directed_edges — to the CSR
// rebuilt from scratch with Graph::FromEdges on the updated edge set.
// Randomized over the differential corpus families; failures print the
// PBFS_DIFF_SEED reproduction banner. Also covers overlay chaining,
// no-op update sequences, RebaseOverlay after a compaction swap,
// MaterializeEdges round trips, DeltaBuffer's concurrent staging, and
// SnapshotManager's epoch-based reclamation.

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_util.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "sched/worker_pool.h"

namespace pbfs {
namespace {

using diff::CorpusGraph;
using diff::MakeCorpus;
using diff::ReproNote;
using dyn::ApplyToSet;
using dyn::EdgeSet;
using dyn::GraphToSet;
using dyn::SetToEdges;

// Random mix of inserts and deletes, biased so deletes find present
// edges; self loops occur naturally when u == v (DeltaBuffer drops
// them, the oracle skips them).
std::vector<EdgeUpdate> RandomUpdates(const Graph& base, int count, Rng& rng) {
  const Vertex n = base.num_vertices();
  std::vector<EdgeUpdate> ops;
  ops.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    EdgeUpdate op;
    op.insert = rng.NextBounded(100) < 60;
    op.u = static_cast<Vertex>(rng.NextBounded(n));
    if (!op.insert && base.Degree(op.u) > 0 && rng.NextBounded(100) < 70) {
      // Delete a real incident edge.
      auto neighbors = base.Neighbors(op.u);
      op.v = neighbors[rng.NextBounded(neighbors.size())];
    } else {
      op.v = static_cast<Vertex>(rng.NextBounded(n));
    }
    ops.push_back(op);
  }
  return ops;
}

// Stamps through the real staging pipeline (drops self loops, assigns
// sequence numbers).
std::vector<StampedUpdate> Stamp(const Graph& base,
                                 std::span<const EdgeUpdate> ops) {
  DeltaBuffer buffer(base.num_vertices());
  buffer.Append(ops);
  return buffer.Drain();
}

// Asserts `view` and `expected` describe the same graph, adjacency list
// by adjacency list.
void ExpectSameGraph(const Graph& view, const Graph& expected,
                     const std::string& note) {
  ASSERT_EQ(view.num_vertices(), expected.num_vertices()) << note;
  ASSERT_EQ(view.num_directed_edges(), expected.num_directed_edges()) << note;
  for (Vertex v = 0; v < expected.num_vertices(); ++v) {
    ASSERT_EQ(view.Degree(v), expected.Degree(v)) << "vertex " << v << " "
                                                  << note;
    auto got = view.Neighbors(v);
    auto want = expected.Neighbors(v);
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "vertex " << v << " neighbor index " << i << " " << note;
    }
  }
}

TEST(DeltaOverlayPropertyTest, OverlayViewMatchesRebuiltCsr) {
  for (int trial = 0; trial < diff::NumTrials(); ++trial) {
    const uint64_t seed = diff::TrialSeed(static_cast<uint64_t>(trial));
    SCOPED_TRACE(ReproNote(seed));
    Rng rng(seed);
    for (const CorpusGraph& gc : MakeCorpus(seed)) {
      if (gc.graph.num_vertices() < 2) continue;
      const int count = 1 + static_cast<int>(rng.NextBounded(64));
      const std::vector<EdgeUpdate> ops = RandomUpdates(gc.graph, count, rng);

      auto overlay = ApplyUpdatesToOverlay(gc.graph, nullptr,
                                           Stamp(gc.graph, ops));
      const Graph view = Graph::OverlayView(gc.graph, overlay.get());

      EdgeSet set = GraphToSet(gc.graph);
      ApplyToSet(set, ops);
      const Graph rebuilt =
          Graph::FromEdges(gc.graph.num_vertices(), SetToEdges(set));
      ExpectSameGraph(view, rebuilt, "graph=" + gc.name);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(DeltaOverlayPropertyTest, ChainedOverlaysMatchRebuiltCsr) {
  for (int trial = 0; trial < diff::NumTrials(); ++trial) {
    const uint64_t seed = diff::TrialSeed(100 + static_cast<uint64_t>(trial));
    SCOPED_TRACE(ReproNote(seed));
    Rng rng(seed);
    for (const CorpusGraph& gc : MakeCorpus(seed)) {
      if (gc.graph.num_vertices() < 2) continue;
      EdgeSet set = GraphToSet(gc.graph);
      std::shared_ptr<const AdjacencyOverlay> overlay;
      // Three generations of patches stacked on one base; each
      // generation's overlay replaces the previous one wholesale.
      for (int gen = 0; gen < 3; ++gen) {
        const int count = 1 + static_cast<int>(rng.NextBounded(32));
        const std::vector<EdgeUpdate> ops =
            RandomUpdates(gc.graph, count, rng);
        overlay = ApplyUpdatesToOverlay(gc.graph, overlay.get(),
                                        Stamp(gc.graph, ops));
        ApplyToSet(set, ops);
      }
      const Graph view = Graph::OverlayView(gc.graph, overlay.get());
      const Graph rebuilt =
          Graph::FromEdges(gc.graph.num_vertices(), SetToEdges(set));
      ExpectSameGraph(view, rebuilt, "graph=" + gc.name);
      if (HasFatalFailure()) return;
    }
  }
}

// Update sequences whose net effect is nothing must produce no overlay
// at all — the immutable fast path stays patch-free.
TEST(DeltaOverlayPropertyTest, NetNoOpUpdatesProduceNullOverlay) {
  Graph base = Path(16);  // edges (v, v+1)
  const std::vector<EdgeUpdate> noop = {
      {3, 4, true},    // duplicate insert of a present edge
      {4, 3, true},    // same edge, reversed endpoints
      {9, 12, false},  // delete of an absent edge
      {5, 5, true},    // self loop (dropped at staging)
      {7, 8, false},   // delete-then-reinsert nets out
      {7, 8, true},
      {10, 14, true},  // insert-then-delete nets out
      {10, 14, false},
  };
  auto overlay = ApplyUpdatesToOverlay(base, nullptr, Stamp(base, noop));
  EXPECT_EQ(overlay, nullptr);

  // Chaining onto a real overlay: reverting a patched vertex back to
  // its base list keeps a conservative base-equal patch (an in-flight
  // compaction may have folded the old patch into its fresh CSR, and
  // the rebase can only override vertices the overlay still mentions).
  // The view equals the base, and the patch dies at the next swap.
  const std::vector<EdgeUpdate> insert = {{0, 8, true}};
  auto patched = ApplyUpdatesToOverlay(base, nullptr, Stamp(base, insert));
  ASSERT_NE(patched, nullptr);
  EXPECT_EQ(patched->num_patched(), 2u);  // both endpoints
  const std::vector<EdgeUpdate> revert = {{0, 8, false}};
  auto reverted =
      ApplyUpdatesToOverlay(base, patched.get(), Stamp(base, revert));
  ASSERT_NE(reverted, nullptr);
  EXPECT_EQ(reverted->num_patched(), 2u);
  ExpectSameGraph(Graph::OverlayView(base, reverted.get()), base,
                  "reverted view");
  // A compaction swap onto an identical fresh CSR sheds the base-equal
  // patches.
  EXPECT_EQ(RebaseOverlay(base, reverted.get()), nullptr);
}

// RebaseOverlay after a compaction swap: patches the fresh CSR already
// contains are dropped; patches published after the compactor pinned
// its input survive, and the rebased view still matches the oracle.
TEST(DeltaOverlayPropertyTest, RebaseDropsFoldedPatchesKeepsNewOnes) {
  Graph base = ErdosRenyi(200, 400, /*seed=*/23);
  const std::vector<EdgeUpdate> first = {{0, 100, true}, {1, 101, true}};
  auto overlay_a = ApplyUpdatesToOverlay(base, nullptr, Stamp(base, first));
  ASSERT_NE(overlay_a, nullptr);

  // "Compaction": rebuild a fresh CSR equal to base + first.
  EdgeSet set = GraphToSet(base);
  ApplyToSet(set, first);
  const Graph fresh = Graph::FromEdges(base.num_vertices(), SetToEdges(set));

  // Everything folded in: nothing survives the rebase.
  EXPECT_EQ(RebaseOverlay(fresh, overlay_a.get()), nullptr);

  // A second batch published on the old base after the compactor
  // pinned: only its patches survive, and the rebased view equals the
  // full oracle.
  const std::vector<EdgeUpdate> second = {{2, 102, true}, {0, 100, false}};
  auto overlay_b =
      ApplyUpdatesToOverlay(base, overlay_a.get(), Stamp(base, second));
  ASSERT_NE(overlay_b, nullptr);
  auto rebased = RebaseOverlay(fresh, overlay_b.get());
  ASSERT_NE(rebased, nullptr);
  ApplyToSet(set, second);
  const Graph rebuilt =
      Graph::FromEdges(base.num_vertices(), SetToEdges(set));
  ExpectSameGraph(Graph::OverlayView(fresh, rebased.get()), rebuilt,
                  "rebased view");
}

TEST(DeltaOverlayPropertyTest, MaterializeEdgesRoundTripsSerialAndParallel) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  for (int trial = 0; trial < diff::NumTrials(); ++trial) {
    const uint64_t seed = diff::TrialSeed(200 + static_cast<uint64_t>(trial));
    SCOPED_TRACE(ReproNote(seed));
    Rng rng(seed);
    Graph base = ErdosRenyi(300, 900, rng.Next());
    const std::vector<EdgeUpdate> ops = RandomUpdates(base, 48, rng);
    auto overlay = ApplyUpdatesToOverlay(base, nullptr, Stamp(base, ops));
    const Graph view = Graph::OverlayView(base, overlay.get());

    EdgeSet set = GraphToSet(base);
    ApplyToSet(set, ops);
    const Graph rebuilt =
        Graph::FromEdges(base.num_vertices(), SetToEdges(set));

    const Graph serial =
        Graph::FromEdges(base.num_vertices(), MaterializeEdges(view));
    ExpectSameGraph(serial, rebuilt, "serial materialize");
    const Graph parallel =
        Graph::FromEdges(base.num_vertices(), MaterializeEdges(view, &pool));
    ExpectSameGraph(parallel, rebuilt, "parallel materialize");
    if (HasFatalFailure()) return;
  }
}

// Concurrent staging: every op appended from racing threads survives
// into one total Drain order with distinct, dense sequence stamps.
TEST(DeltaOverlayPropertyTest, DeltaBufferConcurrentAppendLosesNothing) {
  const Vertex n = 1024;
  DeltaBuffer buffer(n);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Vertex u = static_cast<Vertex>(rng.NextBounded(n));
        const Vertex v = static_cast<Vertex>(rng.NextBounded(n - 1));
        EdgeUpdate op{u, v == u ? n - 1 : v, true};
        buffer.Append({&op, 1});
      }
    });
  }
  for (std::thread& t : writers) t.join();

  std::vector<StampedUpdate> ops = buffer.Drain();
  ASSERT_EQ(ops.size(), static_cast<size_t>(kThreads * kOpsPerThread));
  for (size_t i = 1; i < ops.size(); ++i) {
    ASSERT_LT(ops[i - 1].seq, ops[i].seq) << "index " << i;
  }
  EXPECT_EQ(buffer.pending(), 0u);
  EXPECT_EQ(buffer.Drain().size(), 0u);
}

// Epoch-based reclamation: a pinned retired snapshot stays resident; the
// old owned base CSR is actually freed (weak_ptr expiry) once its epoch
// drains after a compaction swap.
TEST(DeltaOverlayPropertyTest, SnapshotReclamationFollowsEpochDrain) {
  auto owned = std::make_shared<const Graph>(Path(32));
  std::weak_ptr<const Graph> old_base = owned;
  SnapshotManager manager(std::move(owned));

  SnapshotManager::Ref pinned = manager.Pin();
  const std::vector<EdgeUpdate> batch = {{0, 9, true}};
  EXPECT_EQ(manager.ApplyBatch(batch), 2u);
  // Version 1 is retired but the pin holds its epoch.
  EXPECT_EQ(manager.GetStats().retired, 1u);
  EXPECT_EQ(pinned->graph().Degree(0), 1u);  // still the old chain

  // Compact: fold the overlay of the *current* snapshot into a fresh
  // owned CSR and swap it in.
  {
    SnapshotManager::Ref cur = manager.Pin();
    auto fresh = std::make_shared<const Graph>(Graph::FromEdges(
        cur->graph().num_vertices(), MaterializeEdges(cur->graph())));
    manager.InstallCompacted(cur->version(), fresh);
  }
  SnapshotStats stats = manager.GetStats();
  EXPECT_EQ(stats.compact_swaps, 1u);
  EXPECT_EQ(stats.content_version, 2u);
  EXPECT_EQ(stats.overlay_patched_vertices, 0u);
  // The original base is still reachable through the pinned snapshot.
  EXPECT_FALSE(old_base.expired());

  pinned = SnapshotManager::Ref();  // drop the last pin on the old epoch
  manager.ReclaimDrained();
  stats = manager.GetStats();
  EXPECT_EQ(stats.retired, 0u);
  EXPECT_GE(stats.reclaimed, 2u);  // versions 1 and 2 both released
  EXPECT_TRUE(old_base.expired()) << "old base CSR leaked past its epoch";

  // The surviving snapshot answers from the compacted CSR.
  SnapshotManager::Ref after = manager.Pin();
  EXPECT_FALSE(after->has_overlay());
  EXPECT_EQ(after->graph().Degree(0), 2u);  // chain edge + inserted (0,9)
}

// Stage() is the concurrent-writer path: staged ops ride along with the
// next ApplyBatch publication.
TEST(DeltaOverlayPropertyTest, StagedUpdatesPublishWithNextBatch) {
  Graph base = Path(16);
  SnapshotManager manager(SnapshotManager::Borrow(base));

  const std::vector<EdgeUpdate> staged = {{0, 8, true}};
  manager.Stage(staged);
  EXPECT_EQ(manager.GetStats().pending_updates, 1u);
  // Not yet visible.
  EXPECT_EQ(manager.Pin()->graph().Degree(0), 1u);

  const std::vector<EdgeUpdate> batch = {{0, 12, true}};
  EXPECT_EQ(manager.ApplyBatch(batch), 2u);
  SnapshotManager::Ref ref = manager.Pin();
  EXPECT_EQ(manager.GetStats().pending_updates, 0u);
  EXPECT_EQ(ref->graph().Degree(0), 3u);  // (0,1), (0,8), (0,12)
}

}  // namespace
}  // namespace pbfs
