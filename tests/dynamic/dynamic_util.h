// Shared infrastructure for the dynamic-graph differential replay
// harness.
//
// A ReplaySchedule is one randomized interleaving of edge-update
// batches and typed queries over one randomized initial graph, fully
// determined by a 64-bit seed (the diff_util PBFS_DIFF_SEED machinery
// is reused, so failures print the same reproduction banner as the
// static differential suite). The oracle is deliberately naive: apply
// the update batches to a std::set of normalized undirected edges,
// rebuild the CSR from scratch with Graph::FromEdges, and run the
// sequential BFS — any divergence between that and the snapshot/overlay
// machinery under the query engine is a bug in the substrate.
#ifndef PBFS_TESTS_DYNAMIC_DYNAMIC_UTIL_H_
#define PBFS_TESTS_DYNAMIC_DYNAMIC_UTIL_H_

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/khop.h"
#include "bfs/sequential.h"
#include "differential/diff_util.h"
#include "engine/query.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace pbfs {
namespace dyn {

// Normalized undirected edge key: (min, max), never a self loop.
using EdgeKey = std::pair<Vertex, Vertex>;
using EdgeSet = std::set<EdgeKey>;

inline EdgeKey KeyOf(Vertex u, Vertex v) {
  return u < v ? EdgeKey{u, v} : EdgeKey{v, u};
}

// Applies one update batch to the reference edge set with the
// substrate's documented semantics: self loops dropped, duplicate
// insert and missing delete are no-ops, later ops win.
inline void ApplyToSet(EdgeSet& set, const std::vector<EdgeUpdate>& batch) {
  for (const EdgeUpdate& op : batch) {
    if (op.u == op.v) continue;
    if (op.insert) {
      set.insert(KeyOf(op.u, op.v));
    } else {
      set.erase(KeyOf(op.u, op.v));
    }
  }
}

inline std::vector<Edge> SetToEdges(const EdgeSet& set) {
  std::vector<Edge> edges;
  edges.reserve(set.size());
  for (const EdgeKey& key : set) edges.push_back(Edge{key.first, key.second});
  return edges;
}

// Extracts the normalized edge set of any graph (including overlay
// views) from its adjacency lists.
inline EdgeSet GraphToSet(const Graph& graph) {
  EdgeSet set;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex t : graph.Neighbors(v)) {
      if (t > v) set.insert({v, t});
    }
  }
  return set;
}

// One typed query in a schedule; `after_batches` is the prefix of
// update batches the serial replay applies before submitting it.
struct QuerySpec {
  QueryType type = QueryType::kLevels;
  Vertex source = 0;
  std::vector<Vertex> targets;
  Level max_hops = kMaxLevel;
  int after_batches = 0;
};

// One randomized interleaving: an initial graph, a sequence of update
// batches, and a set of queries scattered across the batch sequence.
struct ReplaySchedule {
  Vertex n = 0;
  std::vector<Edge> initial_edges;
  std::vector<std::vector<EdgeUpdate>> batches;
  std::vector<QuerySpec> queries;
};

// Derives one schedule from `seed`. Initial graphs cycle through the
// corpus families (ER, RMAT, star, chain); update batches mix inserts
// of new edges, duplicate inserts, deletes of present and absent edges,
// delete-then-reinsert pairs, and the occasional self loop. A "hot"
// vertex subset biases endpoints so deletes actually hit on sparse
// graphs.
inline ReplaySchedule MakeSchedule(uint64_t seed) {
  Rng rng(seed);
  ReplaySchedule sched;
  sched.n = 16 + static_cast<Vertex>(rng.NextBounded(384));

  Graph initial = [&]() -> Graph {
    switch (rng.NextBounded(4)) {
      case 0:
        return ErdosRenyi(sched.n, sched.n + rng.NextBounded(3 * sched.n),
                          rng.Next());
      case 1: {
        int scale = 4 + static_cast<int>(rng.NextBounded(4));
        Graph g = Kronecker({.scale = scale,
                             .edge_factor = 4 + static_cast<int>(
                                                    rng.NextBounded(6)),
                             .seed = rng.Next()});
        sched.n = std::max(sched.n, g.num_vertices());
        return g;
      }
      case 2:
        return Star(2 + sched.n / 2);
      default:
        return Path(2 + sched.n / 2);
    }
  }();
  sched.n = std::max(sched.n, initial.num_vertices());
  sched.initial_edges = SetToEdges(GraphToSet(initial));

  const Vertex n = sched.n;
  // Hot subset: most ops draw endpoints here, so inserts collide and
  // deletes find prey.
  std::vector<Vertex> hot;
  const size_t hot_size = 2 + rng.NextBounded(std::min<uint64_t>(n, 24));
  for (size_t i = 0; i < hot_size; ++i) {
    hot.push_back(static_cast<Vertex>(rng.NextBounded(n)));
  }
  auto pick = [&]() -> Vertex {
    if (rng.NextBounded(100) < 70) return hot[rng.NextBounded(hot.size())];
    return static_cast<Vertex>(rng.NextBounded(n));
  };

  const int num_batches = 1 + static_cast<int>(rng.NextBounded(10));
  for (int b = 0; b < num_batches; ++b) {
    std::vector<EdgeUpdate> batch;
    const int ops = 1 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < ops; ++i) {
      Vertex u = pick();
      Vertex v = pick();
      const uint64_t kind = rng.NextBounded(100);
      if (kind < 8 && i > 0) {
        // Self loop: must normalize away.
        batch.push_back(EdgeUpdate{u, u, kind % 2 == 0});
        continue;
      }
      if (u == v) v = (v + 1) % n;
      const bool insert = kind < 55;
      batch.push_back(EdgeUpdate{u, v, insert});
      if (kind >= 90) {
        // Delete-then-reinsert (or the reverse) of the same edge, back
        // to back inside the batch: last op must win.
        batch.push_back(EdgeUpdate{u, v, !insert});
      }
    }
    sched.batches.push_back(std::move(batch));
  }

  const int num_queries = 8 + static_cast<int>(rng.NextBounded(32));
  for (int q = 0; q < num_queries; ++q) {
    QuerySpec spec;
    spec.type = static_cast<QueryType>(rng.NextBounded(4));
    spec.source = static_cast<Vertex>(rng.NextBounded(n));
    const int targets = static_cast<int>(rng.NextBounded(5));
    for (int t = 0; t < targets; ++t) {
      spec.targets.push_back(static_cast<Vertex>(rng.NextBounded(n)));
    }
    if (spec.type == QueryType::kKHop) {
      spec.max_hops = static_cast<Level>(rng.NextBounded(5));
    }
    spec.after_batches =
        static_cast<int>(rng.NextBounded(sched.batches.size() + 1));
    sched.queries.push_back(std::move(spec));
  }
  return sched;
}

// Rebuild-CSR-then-BFS oracle: caches, per update-batch prefix, the
// edge set and the sequentially rebuilt Graph.
class ReplayOracle {
 public:
  explicit ReplayOracle(const ReplaySchedule& sched) : sched_(sched) {
    EdgeSet set(ApplyPrefixZero());
    sets_.push_back(set);
    for (const auto& batch : sched.batches) {
      ApplyToSet(set, batch);
      sets_.push_back(set);
    }
    graphs_.resize(sets_.size());
  }

  int num_prefixes() const { return static_cast<int>(sets_.size()); }

  // Graph state after the first `k` batches (k == 0: initial graph).
  const Graph& GraphAfter(int k) {
    auto& slot = graphs_.at(static_cast<size_t>(k));
    if (!slot.has_value()) {
      slot.emplace(Graph::FromEdges(sched_.n, SetToEdges(sets_[k])));
    }
    return *slot;
  }

  const EdgeSet& SetAfter(int k) const { return sets_.at(k); }

 private:
  EdgeSet ApplyPrefixZero() const {
    EdgeSet set;
    for (const Edge& e : sched_.initial_edges) set.insert(KeyOf(e.u, e.v));
    return set;
  }

  const ReplaySchedule& sched_;
  std::vector<EdgeSet> sets_;
  std::vector<std::optional<Graph>> graphs_;
};

// Diffs one engine QueryResult against the oracle graph the query's
// snapshot stamp maps to. Empty string when they agree.
inline std::string DiffResult(const Graph& oracle_graph, const QuerySpec& spec,
                              const QueryResult& got) {
  if (got.status != QueryStatus::kOk) {
    return std::string("status ") + QueryStatusName(got.status);
  }
  const Vertex n = oracle_graph.num_vertices();
  std::vector<Level> levels(n);
  SequentialBfs(oracle_graph, spec.source, levels.data());
  std::ostringstream os;
  switch (spec.type) {
    case QueryType::kLevels: {
      if (got.levels.size() != n) return "levels size mismatch";
      uint64_t reached = 0;
      for (Vertex v = 0; v < n; ++v) {
        if (levels[v] != kLevelUnreached) ++reached;
        if (got.levels[v] != levels[v]) {
          os << "levels[" << v << "]: oracle=" << levels[v]
             << " got=" << got.levels[v];
          return os.str();
        }
      }
      if (got.vertices_reached != reached) {
        os << "vertices_reached: oracle=" << reached
           << " got=" << got.vertices_reached;
        return os.str();
      }
      break;
    }
    case QueryType::kDistances: {
      if (got.levels.size() != spec.targets.size()) {
        return "distances size mismatch";
      }
      for (size_t i = 0; i < spec.targets.size(); ++i) {
        if (got.levels[i] != levels[spec.targets[i]]) {
          os << "distance to " << spec.targets[i]
             << ": oracle=" << levels[spec.targets[i]]
             << " got=" << got.levels[i];
          return os.str();
        }
      }
      break;
    }
    case QueryType::kReachability: {
      if (got.reachable.size() != spec.targets.size()) {
        return "reachability size mismatch";
      }
      for (size_t i = 0; i < spec.targets.size(); ++i) {
        const uint8_t expected =
            levels[spec.targets[i]] != kLevelUnreached ? 1 : 0;
        if (got.reachable[i] != expected) {
          os << "reachable[" << spec.targets[i] << "]: oracle="
             << static_cast<int>(expected)
             << " got=" << static_cast<int>(got.reachable[i]);
          return os.str();
        }
      }
      break;
    }
    case QueryType::kKHop: {
      const std::vector<uint64_t> expected =
          KHopSizesFromLevels({levels.data(), levels.size()}, spec.max_hops);
      if (got.khop_sizes != expected) return "khop_sizes mismatch";
      break;
    }
    case QueryType::kPointToPointDistance: {
      // Sketch-resolved answers are bounded, not exact: check the
      // bracket. Exact-path answers must match the oracle.
      if (spec.targets.size() != 1) return "p2p target count mismatch";
      const Level exact = levels[spec.targets[0]];
      if (got.sketch_resolved) {
        if (got.distance_bounds.lower > exact ||
            (exact != kLevelUnreached &&
             got.distance_bounds.upper < exact)) {
          os << "p2p bounds [" << got.distance_bounds.lower << ", "
             << got.distance_bounds.upper << "] exclude oracle=" << exact;
          return os.str();
        }
      } else if (got.distance != exact) {
        os << "p2p distance: oracle=" << exact << " got=" << got.distance;
        return os.str();
      }
      break;
    }
  }
  return {};
}

inline Query ToQuery(const QuerySpec& spec) {
  Query query;
  query.type = spec.type;
  query.source = spec.source;
  query.targets = spec.targets;
  query.max_hops = spec.max_hops;
  return query;
}

}  // namespace dyn
}  // namespace pbfs

#endif  // PBFS_TESTS_DYNAMIC_DYNAMIC_UTIL_H_
