// Tests for the move_pages(2) placement auditor (obs/numa_audit).
//
// The auditor's claims are checkable without multi-socket hardware: the
// ownership model must reproduce the round-robin task dealing exactly,
// every resident page must be accounted for on some node, a model that
// abstains (expected node -1) must never count misplacements, a model
// that is wrong everywhere must count every judged page, and on a
// single-node host the end-to-end BFS placement audit must come back
// clean. Where move_pages itself is unavailable the reports must say so
// and remain structurally valid. Labeled "obs" in CMake.

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "util/aligned_buffer.h"

#ifdef PBFS_TRACING
#include "obs/numa_audit.h"
#endif

namespace pbfs {
namespace {

#ifndef PBFS_TRACING

TEST(NumaAuditTest, SkippedWithoutTracing) {
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
}

#else  // PBFS_TRACING

using obs::AuditBfsPlacement;
using obs::AuditPages;
using obs::GraphPlacementAudit;
using obs::ModelFor;
using obs::NumaAuditAvailable;
using obs::NumaAuditReport;
using obs::NumaPlacementModel;

uint64_t PagesJudged(const NumaAuditReport& report) {
  return std::accumulate(report.pages_on_node.begin(),
                         report.pages_on_node.end(), uint64_t{0});
}

// Smallest sanity check of a JSON emitter without a parser: every
// opener has its closer and quotes pair up.
void ExpectBalancedJson(const std::string& json) {
  long braces = 0, brackets = 0, quotes = 0;
  bool escaped = false;
  bool in_string = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') {
        in_string = false;
        ++quotes;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; ++quotes; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0) << json;
    EXPECT_GE(brackets, 0) << json;
  }
  EXPECT_EQ(braces, 0) << json;
  EXPECT_EQ(brackets, 0) << json;
  EXPECT_EQ(quotes % 2, 0) << json;
}

// element -> task (element / split) -> worker (task mod W, the
// TaskQueues dealing) -> the worker's node. 3 workers on 2 nodes,
// 4-byte elements, 8 elements per task.
TEST(NumaAuditTest, ModelOwnershipFollowsRoundRobinTaskDealing) {
  NumaPlacementModel model;
  model.bytes_per_element = 4;
  model.split_size = 8;
  model.worker_nodes = {0, 1, 0};
  EXPECT_EQ(model.ExpectedNode(0), 0);    // element 0,  task 0 -> worker 0
  EXPECT_EQ(model.ExpectedNode(31), 0);   // element 7,  task 0
  EXPECT_EQ(model.ExpectedNode(32), 1);   // element 8,  task 1 -> worker 1
  EXPECT_EQ(model.ExpectedNode(63), 1);   // element 15, task 1
  EXPECT_EQ(model.ExpectedNode(64), 0);   // task 2 -> worker 2 (node 0)
  EXPECT_EQ(model.ExpectedNode(96), 0);   // task 3 wraps to worker 0
}

TEST(NumaAuditTest, ModelAbstainsWhenUnconfigured) {
  NumaPlacementModel model;  // no workers
  EXPECT_EQ(model.ExpectedNode(0), -1);
}

TEST(NumaAuditTest, ModelForMirrorsPoolAssignment) {
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  NumaPlacementModel model = ModelFor(pool, 1024, 1);
  ASSERT_EQ(model.worker_nodes.size(), 3u);
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(model.worker_nodes[w], pool.NodeOfWorker(w));
  }
}

TEST(NumaAuditTest, EveryResidentPageIsAccountedFor) {
  std::string reason;
  if (!NumaAuditAvailable(&reason)) {
    GTEST_SKIP() << "move_pages unavailable: " << reason;
  }
  // Touched, page-aligned buffer: the kernel must know where every page
  // lives.
  AlignedBuffer<char> buffer(8 * kPageSize);
  buffer.FillZero();

  // A model with no expectation tallies pages but never misplaces.
  NumaAuditReport neutral =
      AuditPages("buffer", buffer.data(), buffer.size_bytes(), 1,
                 [](uint64_t) { return -1; });
  ASSERT_TRUE(neutral.available) << neutral.unavailable_reason;
  EXPECT_EQ(neutral.pages_total, 8u);
  EXPECT_EQ(PagesJudged(neutral) + neutral.pages_unknown,
            neutral.pages_total);
  EXPECT_EQ(neutral.pages_unknown, 0u);
  EXPECT_EQ(neutral.pages_misplaced, 0u);
  EXPECT_EQ(neutral.MisplacementRatio(), 0.0);

  // A model that is wrong everywhere must flag every judged page —
  // positive proof the misplacement counting works, independent of the
  // host's real topology.
  NumaAuditReport wrong =
      AuditPages("buffer", buffer.data(), buffer.size_bytes(), 1,
                 [](uint64_t) { return 127; });
  ASSERT_TRUE(wrong.available);
  EXPECT_EQ(wrong.pages_misplaced, PagesJudged(wrong));
  EXPECT_EQ(wrong.MisplacementRatio(), 1.0);

  ExpectBalancedJson(neutral.ToJson());
  ExpectBalancedJson(wrong.ToJson());
}

TEST(NumaAuditTest, EmptyRangeAuditsToZeroPages) {
  std::string reason;
  if (!NumaAuditAvailable(&reason)) {
    GTEST_SKIP() << "move_pages unavailable: " << reason;
  }
  NumaAuditReport report =
      AuditPages("empty", nullptr, 0, 1, [](uint64_t) { return 0; });
  EXPECT_TRUE(report.available);
  EXPECT_EQ(report.pages_total, 0u);
  EXPECT_EQ(report.pages_misplaced, 0u);
}

// End-to-end over the paper's three placement-sensitive arrays. On a
// single-node host (the common CI case) the model has nowhere to
// disagree with the kernel, so the audit must come back clean; on any
// host, per-array accounting must balance.
TEST(NumaAuditTest, BfsPlacementAuditBalancesAndIsCleanOnOneNode) {
  Graph graph = SocialNetwork({.num_vertices = 1 << 14, .avg_degree = 8.0,
                               .seed = 11});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});

  GraphPlacementAudit audit = AuditBfsPlacement(graph, &pool, 1024);
  EXPECT_EQ(audit.num_nodes, pool.num_nodes());
  EXPECT_EQ(audit.split_size, 1024u);
  if (!audit.available) {
    EXPECT_FALSE(audit.unavailable_reason.empty());
    EXPECT_NE(audit.ToJson().find("\"available\":false"), std::string::npos);
    ExpectBalancedJson(audit.ToJson());
    GTEST_SKIP() << "move_pages unavailable: " << audit.unavailable_reason;
  }

  ASSERT_EQ(audit.arrays.size(), 3u);
  EXPECT_EQ(audit.arrays[0].array, "csr_offsets");
  EXPECT_EQ(audit.arrays[1].array, "csr_targets");
  EXPECT_EQ(audit.arrays[2].array, "state_bytes");
  for (const NumaAuditReport& report : audit.arrays) {
    ASSERT_TRUE(report.available) << report.array;
    EXPECT_GT(report.pages_total, 0u) << report.array;
    EXPECT_EQ(PagesJudged(report) + report.pages_unknown,
              report.pages_total)
        << report.array;
    if (pool.num_nodes() == 1) {
      EXPECT_EQ(report.pages_misplaced, 0u) << report.ToString();
    }
    EXPECT_NE(report.ToString().find(report.array), std::string::npos);
  }
  ExpectBalancedJson(audit.ToJson());
  EXPECT_NE(audit.ToJson().find("\"arrays\":["), std::string::npos);
}

#endif  // PBFS_TRACING

}  // namespace
}  // namespace pbfs
