// QueryTraceStore invariants (src/obs/query_trace.h).
//
// The store's contract has three load-bearing pieces, each pinned here
// with a fake clock (timestamps are plain int64_t nanoseconds passed
// into every entry point, the session-FSM pattern, so nothing sleeps):
//
//  1. Telescoping: the six stage durations of any finished record sum
//     to exactly its wire latency, no matter which boundaries were
//     stamped, in what order, or how badly cross-thread stamps raced.
//  2. Tail-based retention: shed/expired/error/sampled queries are
//     always kept, ok queries only when they cross the effective slow
//     threshold (absolute, or rolling-p99-relative once the window has
//     enough samples); everything else is discarded and counted.
//  3. Ownership: the layer that opened an entry is the only one that
//     can close it, so the engine finishing a server-owned query cannot
//     truncate the record before the response reaches the wire.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifdef PBFS_TRACING
#include "obs/query_trace.h"
#endif

namespace pbfs {
namespace {

#ifndef PBFS_TRACING

TEST(QueryTraceTest, SkippedWithoutTracing) {
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
}

#else  // PBFS_TRACING

using obs::QueryOutcome;
using obs::QueryStageBound;
using obs::QueryTraceRecord;
using obs::QueryTraceStore;
using obs::TraceOwner;

constexpr int64_t kMs = 1000000;

QueryTraceStore::Options BaseOptions() {
  QueryTraceStore::Options o;
  o.slow_ms = 100;       // absolute threshold for most tests
  o.p99_factor = 0;      // relative trigger off unless a test opts in
  o.emit_spans = false;  // keep the Tracer rings out of unit tests
  return o;
}

// One query through the whole lifecycle: received at start_ns, every
// boundary stamped at even spacing, finished at start_ns + latency_ns.
void RunQuery(QueryTraceStore& store, uint64_t id, int64_t start_ns,
              int64_t latency_ns, QueryOutcome outcome, bool sampled = false,
              uint8_t priority = 0) {
  QueryTraceStore::BeginInfo info;
  info.request_id = id;
  info.sampled = sampled;
  info.priority = priority;
  ASSERT_TRUE(store.Begin(id, TraceOwner::kServer, info, start_ns));
  for (int b = 1; b < obs::kNumQueryStageBounds - 1; ++b) {
    store.Stamp(id, static_cast<QueryStageBound>(b),
                start_ns + latency_ns * b / obs::kNumQueryStageBounds);
  }
  store.Finish(id, TraceOwner::kServer, outcome, start_ns + latency_ns);
}

int64_t StageSumNs(const QueryTraceRecord& r) {
  int64_t sum = 0;
  for (int i = 0; i < obs::kNumQueryStageSpans; ++i) sum += r.StageDurNs(i);
  return sum;
}

TEST(QueryTraceTest, MintedIdsAreNonZeroAndUnique) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = store.MintTraceId();
    ASSERT_NE(id, 0u);
    ASSERT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

// The core identity: stage durations telescope to the wire latency by
// construction, whatever subset of boundaries was actually stamped.
TEST(QueryTraceTest, StageDurationsTelescopeToWireLatency) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());

  // Fully stamped.
  RunQuery(store, 1, 10 * kMs, 500 * kMs, QueryOutcome::kOk);
  // Only received: a query shed at the door.
  QueryTraceStore::BeginInfo info;
  ASSERT_TRUE(store.Begin(2, TraceOwner::kServer, info, 20 * kMs));
  store.Finish(2, TraceOwner::kServer, QueryOutcome::kShed, 25 * kMs);
  // Raced stamps: a later boundary recorded an earlier timestamp than
  // its predecessor (cross-thread clock skew) must clamp, not go
  // negative.
  ASSERT_TRUE(store.Begin(3, TraceOwner::kServer, info, 30 * kMs));
  store.Stamp(3, QueryStageBound::kAdmitted, 400 * kMs);
  store.Stamp(3, QueryStageBound::kTaken, 395 * kMs);  // behind kAdmitted
  store.Stamp(3, QueryStageBound::kKernelDone, 600 * kMs);
  store.Finish(3, TraceOwner::kServer, QueryOutcome::kOk, 650 * kMs);

  const std::vector<QueryTraceRecord> retained = store.Retained();
  ASSERT_EQ(retained.size(), 3u);
  for (const QueryTraceRecord& r : retained) {
    EXPECT_EQ(StageSumNs(r), r.wire_latency_ns) << "trace " << r.trace_id;
    for (int i = 0; i < obs::kNumQueryStageSpans; ++i) {
      EXPECT_GE(r.StageDurNs(i), 0)
          << "trace " << r.trace_id << " stage " << i;
    }
  }
  // The shed query's whole latency lands in the final (deliver) stage
  // via forward-fill.
  EXPECT_EQ(retained[1].wire_latency_ns, 5 * kMs);
  EXPECT_EQ(retained[1].StageDurNs(obs::kNumQueryStageSpans - 1), 5 * kMs);
}

// Boundary stamps are first-write-wins: the server stamping kSubmitted
// just before calling the engine makes the engine's own (later) stamp
// of the same boundary the no-op.
TEST(QueryTraceTest, StampFirstWriteWins) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());
  QueryTraceStore::BeginInfo info;
  ASSERT_TRUE(store.Begin(7, TraceOwner::kServer, info, 0));
  store.Stamp(7, QueryStageBound::kSubmitted, 10 * kMs);
  store.Stamp(7, QueryStageBound::kSubmitted, 99 * kMs);  // ignored
  store.Finish(7, TraceOwner::kServer, QueryOutcome::kOk, 200 * kMs);
  const std::vector<QueryTraceRecord> retained = store.Retained();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(
      retained[0].bounds_ns[static_cast<int>(QueryStageBound::kSubmitted)],
      10 * kMs);
}

TEST(QueryTraceTest, TailRetentionKeepsOnlyInterestingQueries) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());  // slow_ms = 100

  RunQuery(store, 1, 0, 5 * kMs, QueryOutcome::kOk);        // fast: dropped
  RunQuery(store, 2, 0, 500 * kMs, QueryOutcome::kOk);      // slow
  RunQuery(store, 3, 0, 1 * kMs, QueryOutcome::kShed);      // shed
  RunQuery(store, 4, 0, 2 * kMs, QueryOutcome::kExpired);   // expired
  RunQuery(store, 5, 0, 3 * kMs, QueryOutcome::kError);     // error
  RunQuery(store, 6, 0, 1 * kMs, QueryOutcome::kOk, true);  // sampled

  const std::vector<QueryTraceRecord> retained = store.Retained();
  ASSERT_EQ(retained.size(), 5u);
  EXPECT_STREQ(retained[0].retain_reason, "slow");
  EXPECT_STREQ(retained[1].retain_reason, "shed");
  EXPECT_STREQ(retained[2].retain_reason, "expired");
  EXPECT_STREQ(retained[3].retain_reason, "error");
  EXPECT_STREQ(retained[4].retain_reason, "sampled");

  const QueryTraceStore::Stats stats = store.GetStats(0);
  EXPECT_EQ(stats.discarded_total, 1u);
  EXPECT_EQ(stats.retained_slow, 1u);
  EXPECT_EQ(stats.retained_shed, 1u);
  EXPECT_EQ(stats.retained_expired, 1u);
  EXPECT_EQ(stats.retained_error, 1u);
  EXPECT_EQ(stats.retained_sampled, 1u);
  EXPECT_EQ(stats.retained_total(), 5u);
  EXPECT_EQ(stats.open, 0u);
}

// The p99-relative trigger stays dormant until the rolling window holds
// min_p99_samples, then catches queries far above the population even
// when they are under the absolute threshold.
TEST(QueryTraceTest, RelativeThresholdActivatesAfterMinSamples) {
  QueryTraceStore& store = QueryTraceStore::Get();
  QueryTraceStore::Options o = BaseOptions();
  o.slow_ms = 0;  // absolute trigger off: only the relative one acts
  o.p99_factor = 2.0;
  o.min_p99_samples = 10;
  store.Configure(o);

  // 10 one-millisecond queries: threshold still infinite while the
  // window fills, so none retain.
  for (uint64_t i = 1; i <= 10; ++i) {
    RunQuery(store, i, static_cast<int64_t>(i) * kMs, 1 * kMs,
             QueryOutcome::kOk);
  }
  EXPECT_TRUE(store.Retained().empty());
  // Window full: effective threshold ~= p99(1ms) * 2. Another 1 ms
  // query is normal; a 50 ms one is 25x the population and retains.
  const QueryTraceStore::Stats stats = store.GetStats(20 * kMs);
  EXPECT_GT(stats.effective_slow_ms, 0);
  EXPECT_LT(stats.effective_slow_ms, 10.0);
  RunQuery(store, 11, 21 * kMs, 1 * kMs, QueryOutcome::kOk);
  EXPECT_TRUE(store.Retained().empty());
  RunQuery(store, 12, 30 * kMs, 50 * kMs, QueryOutcome::kOk);
  ASSERT_EQ(store.Retained().size(), 1u);
  EXPECT_STREQ(store.Retained()[0].retain_reason, "slow");
}

TEST(QueryTraceTest, FinishRequiresMatchingOwner) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());
  QueryTraceStore::BeginInfo info;
  ASSERT_TRUE(store.Begin(9, TraceOwner::kServer, info, 0));
  // The engine cannot open the same id again...
  EXPECT_FALSE(store.Begin(9, TraceOwner::kEngine, info, 1 * kMs));
  // ...nor close the server-owned entry.
  store.Finish(9, TraceOwner::kEngine, QueryOutcome::kOk, 500 * kMs);
  EXPECT_EQ(store.GetStats(0).open, 1u);
  // The owner can.
  store.Finish(9, TraceOwner::kServer, QueryOutcome::kOk, 500 * kMs);
  EXPECT_EQ(store.GetStats(0).open, 0u);
  ASSERT_EQ(store.Retained().size(), 1u);
  // Double-finish is a no-op, not a duplicate record.
  store.Finish(9, TraceOwner::kServer, QueryOutcome::kOk, 600 * kMs);
  EXPECT_EQ(store.Retained().size(), 1u);
}

TEST(QueryTraceTest, RetainedRingDropsOldest) {
  QueryTraceStore& store = QueryTraceStore::Get();
  QueryTraceStore::Options o = BaseOptions();
  o.max_retained = 4;
  store.Configure(o);
  for (uint64_t i = 1; i <= 10; ++i) {
    RunQuery(store, i, 0, 500 * kMs, QueryOutcome::kOk);
  }
  const std::vector<QueryTraceRecord> retained = store.Retained();
  ASSERT_EQ(retained.size(), 4u);
  for (size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].trace_id, 7 + i);  // oldest first, 7..10 survive
  }
  // The per-reason counters keep counting past the ring cap.
  EXPECT_EQ(store.GetStats(0).retained_slow, 10u);
}

TEST(QueryTraceTest, OpenTableCapCountsDrops) {
  QueryTraceStore& store = QueryTraceStore::Get();
  QueryTraceStore::Options o = BaseOptions();
  o.max_open = 2;
  store.Configure(o);
  QueryTraceStore::BeginInfo info;
  EXPECT_TRUE(store.Begin(1, TraceOwner::kServer, info, 0));
  EXPECT_TRUE(store.Begin(2, TraceOwner::kServer, info, 0));
  EXPECT_FALSE(store.Begin(3, TraceOwner::kServer, info, 0));
  const QueryTraceStore::Stats stats = store.GetStats(0);
  EXPECT_EQ(stats.open, 2u);
  EXPECT_EQ(stats.dropped_total, 1u);
}

TEST(QueryTraceTest, SlowlogJsonShapeAndFilter) {
  QueryTraceStore& store = QueryTraceStore::Get();
  QueryTraceStore::Options o = BaseOptions();
  std::vector<std::string> sink_lines;
  o.slowlog_sink = [&sink_lines](const std::string& line) {
    sink_lines.push_back(line);
  };
  store.Configure(o);

  QueryTraceStore::BeginInfo info;
  info.request_id = 42;
  info.session_id = 5;
  ASSERT_TRUE(store.Begin(11, TraceOwner::kServer, info, 0));
  store.SetShedReason(11, "queue_full");
  store.Finish(11, TraceOwner::kServer, QueryOutcome::kShed, 3 * kMs);
  RunQuery(store, 12, 0, 500 * kMs, QueryOutcome::kOk);

  ASSERT_EQ(sink_lines.size(), 2u);
  EXPECT_NE(sink_lines[0].find("\"trace_id\":11"), std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"request_id\":42"), std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"session_id\":5"), std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"shed_reason\":\"queue_full\""),
            std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"stages_ms\""), std::string::npos);
  EXPECT_NE(sink_lines[0].find("\"wire_ms\":3.000"), std::string::npos);

  // /debug/slowlog body: one line per retained record, filterable.
  const std::string all = store.SlowlogJson();
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 2);
  const std::string one = store.SlowlogJson(12);
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 1);
  EXPECT_NE(one.find("\"trace_id\":12"), std::string::npos);
  EXPECT_EQ(store.SlowlogJson(999), "");
}

TEST(QueryTraceTest, ExemplarTracksWorstRetainedPerPriority) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());
  RunQuery(store, 21, 0, 150 * kMs, QueryOutcome::kOk, false, 0);
  RunQuery(store, 22, 0, 300 * kMs, QueryOutcome::kOk, false, 0);
  RunQuery(store, 23, 0, 200 * kMs, QueryOutcome::kOk, false, 0);
  RunQuery(store, 24, 0, 120 * kMs, QueryOutcome::kOk, false, 1);
  // Fast queries leave no exemplar even at an empty priority.
  RunQuery(store, 25, 0, 1 * kMs, QueryOutcome::kOk, false, 2);

  EXPECT_EQ(store.exemplar(0).trace_id, 22u);
  EXPECT_DOUBLE_EQ(store.exemplar(0).latency_ms, 300.0);
  EXPECT_EQ(store.exemplar(1).trace_id, 24u);
  EXPECT_EQ(store.exemplar(2).trace_id, 0u);
  EXPECT_EQ(store.exemplar(200).trace_id, 0u);  // out of range: empty
}

TEST(QueryTraceTest, ConfigureClearsAllState) {
  QueryTraceStore& store = QueryTraceStore::Get();
  store.Configure(BaseOptions());
  RunQuery(store, 31, 0, 500 * kMs, QueryOutcome::kOk);
  QueryTraceStore::BeginInfo info;
  ASSERT_TRUE(store.Begin(32, TraceOwner::kServer, info, 0));
  ASSERT_EQ(store.Retained().size(), 1u);

  store.Configure(BaseOptions());
  const QueryTraceStore::Stats stats = store.GetStats(0);
  EXPECT_EQ(stats.open, 0u);
  EXPECT_EQ(stats.retained, 0u);
  EXPECT_EQ(stats.retained_total(), 0u);
  EXPECT_EQ(stats.discarded_total, 0u);
  EXPECT_TRUE(store.Retained().empty());
  EXPECT_EQ(store.exemplar(0).trace_id, 0u);
}

#endif  // PBFS_TRACING

}  // namespace
}  // namespace pbfs
