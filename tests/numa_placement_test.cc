#include "graph/numa_placement.h"

#include <gtest/gtest.h>

#include "bfs/single_source.h"
#include "graph/generators.h"
#include "test_util.h"

namespace pbfs {
namespace {

void ExpectSameStructure(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
    }
  }
}

TEST(NumaPlacementTest, CloneIsStructurallyIdentical) {
  Graph g = Kronecker({.scale = 11, .edge_factor = 8, .seed = 13});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  Graph clone = CloneNumaAware(g, &pool, 512);
  ExpectSameStructure(g, clone);
}

TEST(NumaPlacementTest, WorksWithUnevenSplitAndFewVertices) {
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  for (Vertex n : {1u, 2u, 63u, 100u}) {
    Graph g = Path(n);
    Graph clone = CloneNumaAware(g, &pool, 7);
    ExpectSameStructure(g, clone);
  }
}

TEST(NumaPlacementTest, EmptyGraph) {
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  Graph g = Graph::FromEdges(0, {});
  Graph clone = CloneNumaAware(g, &pool, 64);
  EXPECT_EQ(clone.num_vertices(), 0u);
  EXPECT_EQ(clone.num_edges(), 0u);
}

TEST(NumaPlacementTest, BfsOnCloneMatchesOriginal) {
  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 10.0,
                           .seed = 31});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  Graph clone = CloneNumaAware(g, &pool, 1024);
  auto bfs = MakeSmsPbfs(clone, SmsVariant::kBit, &pool);
  std::vector<Level> expected = testing_util::ReferenceLevels(g, 5);
  std::vector<Level> got(clone.num_vertices());
  bfs->Run(5, BfsOptions{}, got.data());
  EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1);
}

}  // namespace
}  // namespace pbfs
