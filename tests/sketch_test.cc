// Cluster-BFS distance-sketch suite (sketch/*.h and the engine's
// kPointToPointDistance path).
//
// The load-bearing property, checked against the sequential BFS oracle
// over the randomized differential corpora: for every pair (s, t),
//   sketch lower <= exact distance <= sketch upper
// with `upper == kLevelUnreached` exactly describing "no cluster
// connects the pair". On top of that: the oracle's exact fallback, the
// engine fast path under perturbed steal schedules, and the staleness
// contract — a query admitted after ApplyUpdates is never answered
// from a sketch built for an older content version.
//
// Reproduction: failures print the PBFS_DIFF_SEED banner from
// tests/differential/diff_util.h.

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bfs/sequential.h"
#include "differential/diff_util.h"
#include "dynamic/dynamic_util.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "sched/steal_policy.h"
#include "sched/worker_pool.h"
#include "sketch/oracle.h"
#include "sketch/rebuilder.h"
#include "sketch/sketch.h"
#include "util/rng.h"

namespace pbfs {
namespace {

Level ExactDistance(const Graph& graph, Vertex s, Vertex t) {
  std::vector<Level> levels(graph.num_vertices());
  SequentialBfs(graph, s, levels.data());
  return levels[t];
}

TEST(BoundsTest, TightenAndClamp) {
  DistanceBounds b;
  EXPECT_EQ(b.lower, 0);
  EXPECT_EQ(b.upper, kLevelUnreached);

  // Unreached references never tighten.
  TightenBounds(b, kLevelUnreached, 3, 0);
  TightenBounds(b, 3, kLevelUnreached, 0);
  EXPECT_EQ(b.upper, kLevelUnreached);

  TightenBounds(b, 4, 7, /*upper_slack=*/2);
  EXPECT_EQ(b.upper, 13);
  EXPECT_EQ(b.lower, 3);

  // A tighter reference wins; a looser one is ignored.
  TightenBounds(b, 5, 5, /*upper_slack=*/0);
  EXPECT_EQ(b.upper, 10);
  EXPECT_EQ(b.lower, 3);
  TightenBounds(b, 20, 20, /*upper_slack=*/2);
  EXPECT_EQ(b.upper, 10);

  // Near-overflow sums must not wrap into a bogus tight upper bound.
  DistanceBounds big;
  TightenBounds(big, kMaxLevel, kMaxLevel, 2);
  EXPECT_EQ(big.upper, kLevelUnreached);

  DistanceBounds flat;
  TightenBounds(flat, 2, 2, 1);
  ClampDistinctPair(flat);
  EXPECT_EQ(flat.lower, 1);
}

TEST(ClusterSketchTest, ExactOnStarAndPath) {
  SerialExecutor serial;
  // Star: the hub cluster covers everything within the diameter.
  Graph star = Star(64);
  auto star_sketch = BuildSketch(star, /*content_version=*/1, &serial,
                                 {.num_clusters = 2, .cluster_size = 16});
  for (Vertex s : {Vertex{0}, Vertex{1}, Vertex{5}}) {
    for (Vertex t : {Vertex{0}, Vertex{2}, Vertex{63}}) {
      const Level exact = ExactDistance(star, s, t);
      const DistanceBounds b = star_sketch->Query(s, t);
      EXPECT_LE(b.lower, exact);
      EXPECT_GE(b.upper, exact);
    }
  }

  // Path: one cluster at an end; bounds must bracket every distance
  // and pinch for pairs the bitsets resolve.
  Graph path = Path(32);
  auto path_sketch = BuildSketch(path, /*content_version=*/1, &serial,
                                 {.num_clusters = 4,
                                  .cluster_size = 8,
                                  .strategy = SeedStrategy::kRandom,
                                  .seed = 3});
  for (Vertex s = 0; s < 32; s += 5) {
    for (Vertex t = 0; t < 32; t += 7) {
      const Level exact = ExactDistance(path, s, t);
      const DistanceBounds b = path_sketch->Query(s, t);
      EXPECT_LE(b.lower, exact) << "s=" << s << " t=" << t;
      EXPECT_GE(b.upper, exact) << "s=" << s << " t=" << t;
    }
  }
}

// The property test: bounds bracket the sequential oracle on every
// corpus family, both seed strategies.
TEST(ClusterSketchTest, BoundsBracketOracleOnCorpus) {
  SerialExecutor serial;
  for (int trial = 0; trial < diff::NumTrials(); ++trial) {
    const uint64_t seed = diff::TrialSeed(trial);
    const std::string note = diff::ReproNote(seed);
    Rng rng(seed);
    for (const diff::CorpusGraph& entry : diff::MakeCorpus(seed)) {
      const Graph& graph = entry.graph;
      const Vertex n = graph.num_vertices();
      if (n < 2) continue;
      for (SeedStrategy strategy :
           {SeedStrategy::kHighestDegree, SeedStrategy::kRandom}) {
        auto sketch = BuildSketch(graph, /*content_version=*/1, &serial,
                                  {.num_clusters = 6,
                                   .cluster_size = 16,
                                   .strategy = strategy,
                                   .seed = rng.Next()});
        std::vector<Level> levels(n);
        for (int pair = 0; pair < 24; ++pair) {
          const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
          const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
          SequentialBfs(graph, s, levels.data());
          const Level exact = levels[t];
          const DistanceBounds b = sketch->Query(s, t);
          if (exact == kLevelUnreached) {
            // A cluster reaching both endpoints would prove them
            // connected, so an unreachable pair must stay unbounded.
            EXPECT_EQ(b.upper, kLevelUnreached)
                << entry.name << " s=" << s << " t=" << t << " " << note;
          } else {
            EXPECT_LE(b.lower, exact)
                << entry.name << " s=" << s << " t=" << t << " " << note;
            EXPECT_GE(b.upper, exact)
                << entry.name << " s=" << s << " t=" << t << " " << note;
          }
        }
      }
    }
  }
}

TEST(ClusterSketchTest, ParallelBuildMatchesSerial) {
  const uint64_t seed = diff::TrialSeed(11);
  Graph graph = ErdosRenyi(800, 3200, seed);
  SerialExecutor serial;
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  const SketchOptions options{.num_clusters = 8, .cluster_size = 32};
  auto serial_sketch = BuildSketch(graph, 1, &serial, options);
  auto parallel_sketch = BuildSketch(graph, 1, &pool, options);
  Rng rng(seed);
  for (int pair = 0; pair < 200; ++pair) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(800));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(800));
    const DistanceBounds a = serial_sketch->Query(s, t);
    const DistanceBounds b = parallel_sketch->Query(s, t);
    EXPECT_EQ(a.lower, b.lower) << "s=" << s << " t=" << t;
    EXPECT_EQ(a.upper, b.upper) << "s=" << s << " t=" << t;
  }
}

TEST(DistanceOracleTest, FallbackIsExactAndBounded) {
  const uint64_t seed = diff::TrialSeed(5);
  const std::string note = diff::ReproNote(seed);
  Graph graph = ErdosRenyi(700, 2100, seed);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  auto sketch = BuildSketch(graph, 1, &pool,
                            {.num_clusters = 8, .cluster_size = 32});
  DistanceOracle oracle(sketch, graph, &pool);
  Rng rng(seed ^ 1);
  for (int pair = 0; pair < 64; ++pair) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(700));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(700));
    const Level exact = ExactDistance(graph, s, t);
    // Tolerance 0: hits only on pinched (= exact) bounds, so both
    // paths must agree with the oracle exactly.
    const DistanceOracle::Result result = oracle.Distance(s, t);
    EXPECT_EQ(result.distance, exact) << "s=" << s << " t=" << t << " "
                                      << note;
    EXPECT_TRUE(result.bounds.exact()) << note;
  }
  const DistanceOracle::Stats& stats = oracle.stats();
  EXPECT_EQ(stats.sketch_hits + stats.exact_fallbacks, 64u);
}

// Sketches disabled (the default): p2p queries take the exact
// traversal path end-to-end, and malformed ones are rejected.
TEST(EngineP2PTest, ExactPathWithoutSketches) {
  Graph graph = ErdosRenyi(400, 1200, /*seed=*/77);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(400));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(400));
    Query query;
    query.type = QueryType::kPointToPointDistance;
    query.source = s;
    query.targets = {t};
    auto sub = engine.Submit(std::move(query));
    const QueryResult result = sub.result.get();
    EXPECT_EQ(result.status, QueryStatus::kOk);
    EXPECT_FALSE(result.sketch_resolved);
    EXPECT_EQ(result.distance, ExactDistance(graph, s, t));
    EXPECT_TRUE(result.distance_bounds.exact());
  }
  Query missing_target;
  missing_target.type = QueryType::kPointToPointDistance;
  missing_target.source = 0;
  EXPECT_EQ(engine.Submit(std::move(missing_target)).result.get().status,
            QueryStatus::kInvalid);
  EXPECT_EQ(engine.SketchStats().rebuilds, 0u);
  EXPECT_EQ(engine.CurrentSketch(), nullptr);
}

// The engine fast path under the perturbed steal schedules: tolerance
// 0, so sketch hits (pinched bounds) and exact fallbacks must both
// equal the sequential oracle.
TEST(EngineP2PTest, MatchesOracleUnderPerturbedSchedules) {
  const uint64_t seed = diff::TrialSeed(17);
  const std::string note = diff::ReproNote(seed);
  Graph graph = ErdosRenyi(600, 2400, seed);
  const Vertex n = graph.num_vertices();
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  for (const NamedStealPolicy& schedule : PerturbationSchedules()) {
    if (schedule.name != "steal_heavy" && schedule.name != "starvation") {
      continue;
    }
    SCOPED_TRACE(schedule.name);
    pool.SetStealPolicy(schedule.policy);
    {
      QueryEngineOptions options;
      options.coalesce_wait_ms = 0.1;
      options.bfs.split_size = 64;  // many tasks -> many (forced) steals
      options.enable_sketches = true;
      options.sketch = {.num_clusters = 8, .cluster_size = 32};
      options.sketch_workers = 1;
      QueryEngine engine(graph, &pool, options);
      engine.WaitSketchIdle();
      std::vector<std::thread> clients;
      for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
          Rng rng(seed ^ static_cast<uint64_t>(c + 1));
          for (int q = 0; q < 16; ++q) {
            const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
            const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
            Query query;
            query.type = QueryType::kPointToPointDistance;
            query.source = s;
            query.targets = {t};
            auto sub = engine.Submit(std::move(query));
            const QueryResult result = sub.result.get();
            EXPECT_EQ(result.status, QueryStatus::kOk) << note;
            EXPECT_EQ(result.distance, ExactDistance(graph, s, t))
                << "schedule=" << schedule.name << " s=" << s << " t=" << t
                << " " << note;
            EXPECT_EQ(result.snapshot_version, 1u);
          }
        });
      }
      for (std::thread& t : clients) t.join();
      engine.Drain();
      const QueryEngineStats stats = engine.Stats();
      EXPECT_EQ(stats.sketch_hits + stats.sketch_fallbacks +
                    stats.sketch_stale,
                48u);
    }
    pool.SetStealPolicy(nullptr);
  }
}

// Nonzero tolerance: resolved answers may be inexact but the bounds
// must bracket the truth and respect the tolerance.
TEST(EngineP2PTest, ToleranceBracketsTruth) {
  const uint64_t seed = diff::TrialSeed(23);
  const std::string note = diff::ReproNote(seed);
  Graph graph = SocialNetwork(
      {.num_vertices = 1024, .avg_degree = 8.0, .seed = seed});
  const Vertex n = graph.num_vertices();
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.enable_sketches = true;
  options.sketch = {.num_clusters = 8, .cluster_size = 32};
  options.sketch_workers = 1;
  QueryEngine engine(graph, &pool, options);
  engine.WaitSketchIdle();
  Rng rng(seed);
  uint64_t resolved = 0;
  for (int q = 0; q < 48; ++q) {
    const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
    const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
    Query query;
    query.type = QueryType::kPointToPointDistance;
    query.source = s;
    query.targets = {t};
    query.tolerance = 3;
    auto sub = engine.Submit(std::move(query));
    const QueryResult result = sub.result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);
    const Level exact = ExactDistance(graph, s, t);
    EXPECT_LE(result.distance_bounds.lower, exact) << note;
    if (exact != kLevelUnreached) {
      EXPECT_GE(result.distance_bounds.upper, exact) << note;
    }
    if (result.sketch_resolved) {
      ++resolved;
      EXPECT_LE(result.distance_bounds.upper -
                    result.distance_bounds.lower,
                3u)
          << note;
      EXPECT_EQ(result.distance, result.distance_bounds.upper);
    } else {
      EXPECT_EQ(result.distance, exact) << note;
    }
  }
  // The hub-heavy social graph resolves most pairs within tolerance 3.
  EXPECT_GT(resolved, 0u) << note;
}

// The staleness contract, deterministically: delete the middle edge of
// a path, then immediately query across the cut with a huge tolerance.
// A stale sketch would happily serve its old finite upper bound; the
// engine must reject it (content version mismatch) and traverse, so
// the answer is "unreachable". The rebuild delay keeps the sketch
// stale for the whole first round of queries.
TEST(EngineP2PChurnTest, NeverServesStaleSketch) {
  const Vertex n = 64;
  Graph graph = Path(n);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngineOptions options;
  options.enable_sketches = true;
  options.sketch = {.num_clusters = 4, .cluster_size = 8};
  options.sketch_workers = 1;
  options.sketch_debug_delay_ms = 50;
  QueryEngine engine(graph, &pool, options);
  engine.WaitSketchIdle();
  EXPECT_EQ(engine.SketchStats().content_version, 1u);

  // Pre-update sanity: the ends of the path are 63 hops apart.
  Query before;
  before.type = QueryType::kPointToPointDistance;
  before.source = 0;
  before.targets = {n - 1};
  before.tolerance = kMaxLevel;
  EXPECT_EQ(engine.Submit(std::move(before)).result.get().distance, n - 1);

  const EdgeUpdate cut{n / 2, n / 2 + 1, /*insert=*/false};
  const uint64_t new_version = engine.ApplyUpdates({&cut, 1});
  EXPECT_GT(new_version, 1u);
  // Submitted while the delayed rebuild is still running: the published
  // sketch lags this query's snapshot, so the engine must fall back to
  // an exact traversal of the cut graph.
  Query after;
  after.type = QueryType::kPointToPointDistance;
  after.source = 0;
  after.targets = {n - 1};
  after.tolerance = kMaxLevel;
  const QueryResult result = engine.Submit(std::move(after)).result.get();
  EXPECT_EQ(result.status, QueryStatus::kOk);
  EXPECT_EQ(result.distance, kLevelUnreached);
  EXPECT_FALSE(result.sketch_resolved);
  EXPECT_EQ(result.snapshot_version, new_version);

  // Once the rebuild catches up the fresh sketch agrees: still
  // unreachable across the cut, and same-side pairs resolve again.
  engine.WaitSketchIdle();
  EXPECT_EQ(engine.SketchStats().content_version, new_version);
  Query across;
  across.type = QueryType::kPointToPointDistance;
  across.source = 0;
  across.targets = {n - 1};
  across.tolerance = kMaxLevel;
  EXPECT_EQ(engine.Submit(std::move(across)).result.get().distance,
            kLevelUnreached);
  Query same_side;
  same_side.type = QueryType::kPointToPointDistance;
  same_side.source = 0;
  same_side.targets = {n / 4};
  same_side.tolerance = kMaxLevel;
  EXPECT_EQ(engine.Submit(std::move(same_side)).result.get().distance,
            n / 4);

  const QueryEngineStats stats = engine.Stats();
  EXPECT_GE(stats.sketch_stale, 1u);
}

// Serial churn differential: after every ApplyUpdates, tolerance-0 p2p
// answers must equal the rebuild-then-BFS oracle while the rebuilder
// races in the background.
TEST(EngineP2PChurnTest, SerialChurnMatchesRebuildOracle) {
  const uint64_t seed = diff::TrialSeed(31);
  const std::string note = diff::ReproNote(seed);
  const Vertex n = 512;
  Graph graph = ErdosRenyi(n, 1536, seed);
  dyn::EdgeSet reference = dyn::GraphToSet(graph);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.enable_sketches = true;
  options.sketch = {.num_clusters = 6, .cluster_size = 16};
  options.sketch_workers = 1;
  QueryEngine engine(graph, &pool, options);
  Rng rng(seed ^ 2);
  for (int round = 0; round < 8; ++round) {
    std::vector<EdgeUpdate> batch;
    for (int i = 0; i < 12; ++i) {
      EdgeUpdate op;
      op.u = static_cast<Vertex>(rng.NextBounded(n));
      op.v = static_cast<Vertex>(rng.NextBounded(n));
      op.insert = rng.NextBounded(2) == 0;
      batch.push_back(op);
    }
    engine.ApplyUpdates(batch);
    dyn::ApplyToSet(reference, batch);
    const Graph rebuilt = Graph::FromEdges(n, dyn::SetToEdges(reference));
    for (int q = 0; q < 6; ++q) {
      const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
      const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
      Query query;
      query.type = QueryType::kPointToPointDistance;
      query.source = s;
      query.targets = {t};
      auto sub = engine.Submit(std::move(query));
      const QueryResult result = sub.result.get();
      ASSERT_EQ(result.status, QueryStatus::kOk) << note;
      EXPECT_EQ(result.distance, ExactDistance(rebuilt, s, t))
          << "round=" << round << " s=" << s << " t=" << t << " " << note;
    }
  }
  engine.Drain();
  engine.WaitSketchIdle();
  EXPECT_GE(engine.SketchStats().rebuilds, 1u);
}

// Concurrent churn: an updater races client threads; every result must
// bracket the exact distance on the reference graph rebuilt at the
// result's stamped content version.
TEST(EngineP2PChurnTest, ConcurrentChurnBracketsTruth) {
  const uint64_t seed = diff::TrialSeed(41);
  const std::string note = diff::ReproNote(seed);
  const Vertex n = 384;
  Graph graph = ErdosRenyi(n, 1152, seed);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.coalesce_wait_ms = 0.1;
  options.enable_sketches = true;
  options.sketch = {.num_clusters = 6, .cluster_size = 16};
  options.sketch_workers = 1;
  QueryEngine engine(graph, &pool, options);

  // Content-version -> edge set, kept by the single updater thread.
  std::map<uint64_t, dyn::EdgeSet> versions;
  versions[1] = dyn::GraphToSet(graph);
  std::thread updater([&] {
    Rng rng(seed ^ 3);
    dyn::EdgeSet reference = versions[1];
    for (int round = 0; round < 6; ++round) {
      std::vector<EdgeUpdate> batch;
      for (int i = 0; i < 10; ++i) {
        EdgeUpdate op;
        op.u = static_cast<Vertex>(rng.NextBounded(n));
        op.v = static_cast<Vertex>(rng.NextBounded(n));
        op.insert = rng.NextBounded(2) == 0;
        batch.push_back(op);
      }
      const uint64_t version = engine.ApplyUpdates(batch);
      dyn::ApplyToSet(reference, batch);
      versions[version] = reference;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  struct Observed {
    Vertex s = 0;
    Vertex t = 0;
    QueryResult result;
  };
  std::vector<std::vector<Observed>> observed(3);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed ^ static_cast<uint64_t>(10 + c));
      for (int q = 0; q < 20; ++q) {
        const Vertex s = static_cast<Vertex>(rng.NextBounded(n));
        const Vertex t = static_cast<Vertex>(rng.NextBounded(n));
        Query query;
        query.type = QueryType::kPointToPointDistance;
        query.source = s;
        query.targets = {t};
        query.tolerance = 2;
        auto sub = engine.Submit(std::move(query));
        observed[c].push_back({s, t, sub.result.get()});
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  updater.join();
  engine.Drain();

  // The updater finished before the clients' last queries were
  // admitted, so every stamped version is in the map (publication is
  // ordered). Verify against the rebuilt CSR per version.
  std::map<uint64_t, Graph> rebuilt;
  for (const std::vector<Observed>& per_client : observed) {
    for (const Observed& obs : per_client) {
      ASSERT_EQ(obs.result.status, QueryStatus::kOk) << note;
      const uint64_t version = obs.result.snapshot_version;
      ASSERT_TRUE(versions.count(version) > 0)
          << "version=" << version << " " << note;
      auto it = rebuilt.find(version);
      if (it == rebuilt.end()) {
        it = rebuilt
                 .emplace(version,
                          Graph::FromEdges(
                              n, dyn::SetToEdges(versions[version])))
                 .first;
      }
      const Level exact = ExactDistance(it->second, obs.s, obs.t);
      EXPECT_LE(obs.result.distance_bounds.lower, exact)
          << "v=" << version << " s=" << obs.s << " t=" << obs.t << " "
          << note;
      if (exact != kLevelUnreached) {
        EXPECT_GE(obs.result.distance_bounds.upper, exact)
            << "v=" << version << " s=" << obs.s << " t=" << obs.t << " "
            << note;
      }
      if (!obs.result.sketch_resolved) {
        EXPECT_EQ(obs.result.distance, exact) << note;
      }
    }
  }
}

}  // namespace
}  // namespace pbfs
