// Cross-checks every BFS variant against the textbook reference on a
// matrix of graph shapes, thread counts, bitset widths, and direction
// policies. These tests are the backbone of the suite: any traversal
// bug shows up as a level mismatch here.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bfs/beamer.h"
#include "bfs/multi_source.h"
#include "bfs/sequential.h"
#include "bfs/single_source.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "test_util.h"

namespace pbfs {
namespace {

using testing_util::ReferenceLevels;

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> MakeGraphCases() {
  std::vector<GraphCase> cases;
  cases.push_back({"path64", Path(64)});
  cases.push_back({"path1000", Path(1000)});
  cases.push_back({"cycle97", Cycle(97)});
  cases.push_back({"star256", Star(256)});
  cases.push_back({"complete32", Complete(32)});
  cases.push_back({"grid17x13", Grid(17, 13)});
  cases.push_back({"tree1023", BinaryTree(1023)});
  cases.push_back({"single", Path(1)});
  cases.push_back({"two_components",
                   Graph::FromEdges(9, std::vector<Edge>{{0, 1},
                                                         {1, 2},
                                                         {3, 4},
                                                         {4, 5},
                                                         {5, 6},
                                                         {6, 3}})});
  cases.push_back({"kron10", Kronecker({.scale = 10, .edge_factor = 8,
                                        .seed = 17})});
  cases.push_back({"social4k", SocialNetwork({.num_vertices = 4096,
                                              .avg_degree = 10.0,
                                              .seed = 23})});
  cases.push_back({"er2k", ErdosRenyi(2048, 6000, 29)});
  return cases;
}

std::vector<Vertex> TestSources(const Graph& graph) {
  std::vector<Vertex> sources = {0};
  if (graph.num_vertices() > 1) sources.push_back(graph.num_vertices() - 1);
  if (graph.num_vertices() > 10) sources.push_back(graph.num_vertices() / 2);
  return sources;
}

// ---------------------------------------------------------------------
// Single-source variants.
// ---------------------------------------------------------------------

class SingleSourceParam
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

class BeamerParam : public ::testing::TestWithParam<bool> {};

TEST_P(BeamerParam, BeamerVariantsMatchReference) {
  const bool enable_bottom_up = GetParam();
  BfsOptions options;
  options.enable_bottom_up = enable_bottom_up;
  for (const GraphCase& gc : MakeGraphCases()) {
    for (Vertex source : TestSources(gc.graph)) {
      std::vector<Level> expected = ReferenceLevels(gc.graph, source);
      for (BeamerVariant variant : {BeamerVariant::kSparse,
                                    BeamerVariant::kDense,
                                    BeamerVariant::kGapbs}) {
        std::vector<Level> got(gc.graph.num_vertices());
        BfsResult r = BeamerBfs(gc.graph, source, variant, options,
                                got.data());
        EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
            << gc.name << " source=" << source << " "
            << BeamerVariantName(variant);
        EXPECT_EQ(r.vertices_visited,
                  testing_util::ReachableCount(gc.graph, source))
            << gc.name;
        if (!enable_bottom_up) {
          EXPECT_EQ(r.bottom_up_iterations, 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, BeamerParam, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "hybrid" : "topdown";
                         });

TEST_P(SingleSourceParam, SmsPbfsMatchesReference) {
  auto [threads, enable_bottom_up] = GetParam();
  BfsOptions options;
  options.enable_bottom_up = enable_bottom_up;
  options.split_size = 128;  // small tasks to exercise stealing

  std::unique_ptr<WorkerPool> pool;
  SerialExecutor serial;
  Executor* executor = &serial;
  if (threads > 1) {
    pool = std::make_unique<WorkerPool>(
        WorkerPool::Options{.num_workers = threads, .pin_threads = false});
    executor = pool.get();
  }

  for (const GraphCase& gc : MakeGraphCases()) {
    for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
      std::unique_ptr<SingleSourceBfsBase> bfs =
          MakeSmsPbfs(gc.graph, variant, executor);
      for (Vertex source : TestSources(gc.graph)) {
        std::vector<Level> expected = ReferenceLevels(gc.graph, source);
        std::vector<Level> got(gc.graph.num_vertices());
        BfsResult r = bfs->Run(source, options, got.data());
        EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
            << gc.name << " source=" << source << " "
            << SmsVariantName(variant) << " threads=" << threads;
        EXPECT_EQ(r.vertices_visited,
                  testing_util::ReachableCount(gc.graph, source))
            << gc.name << " " << SmsVariantName(variant);
        if (!enable_bottom_up) {
          EXPECT_EQ(r.bottom_up_iterations, 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndDirections, SingleSourceParam,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "threads" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_hybrid" : "_topdown");
    });

// Forced bottom-up-heavy traversal (tiny alpha) still yields correct
// levels.
TEST(SingleSourceTest, AggressiveBottomUpSwitching) {
  BfsOptions options;
  options.alpha = 0.001;  // switch to bottom-up almost immediately
  options.beta = 1e9;     // and never switch back
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  for (const GraphCase& gc : MakeGraphCases()) {
    for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
      std::unique_ptr<SingleSourceBfsBase> bfs =
          MakeSmsPbfs(gc.graph, variant, &pool);
      Vertex source = 0;
      std::vector<Level> expected = ReferenceLevels(gc.graph, source);
      std::vector<Level> got(gc.graph.num_vertices());
      bfs->Run(source, options, got.data());
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << gc.name << " " << SmsVariantName(variant);
    }
  }
}

// Instance reuse across many sources must not leak state.
TEST(SingleSourceTest, InstanceReuseAcrossSources) {
  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                           .seed = 5});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
    std::unique_ptr<SingleSourceBfsBase> bfs =
        MakeSmsPbfs(g, variant, &pool);
    BfsOptions options;
    for (Vertex source : PickSources(g, 8, 77)) {
      std::vector<Level> expected = ReferenceLevels(g, source);
      std::vector<Level> got(g.num_vertices());
      bfs->Run(source, options, got.data());
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << SmsVariantName(variant) << " source=" << source;
    }
  }
}

TEST(SingleSourceTest, NullLevelSinkStillCounts) {
  Graph g = Grid(20, 20);
  SerialExecutor serial;
  for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
    std::unique_ptr<SingleSourceBfsBase> bfs =
        MakeSmsPbfs(g, variant, &serial);
    BfsResult r = bfs->Run(0, BfsOptions{}, nullptr);
    EXPECT_EQ(r.vertices_visited, 400u);
  }
}

// ---------------------------------------------------------------------
// Multi-source variants.
// ---------------------------------------------------------------------

struct MsCase {
  int width;
  int threads;  // 0 = sequential MS-BFS baseline
};

class MultiSourceParam : public ::testing::TestWithParam<MsCase> {};

TEST_P(MultiSourceParam, LevelsMatchReferencePerSource) {
  const MsCase ms = GetParam();
  std::unique_ptr<WorkerPool> pool;
  SerialExecutor serial;

  for (const GraphCase& gc : MakeGraphCases()) {
    const Vertex n = gc.graph.num_vertices();
    // Batch: a mix of sources, including duplicates, up to the width.
    std::vector<Vertex> sources;
    for (Vertex v = 0; v < n && sources.size() < 20; v += (n / 7) + 1) {
      sources.push_back(v);
    }
    sources.push_back(0);  // duplicate source
    if (static_cast<int>(sources.size()) > ms.width) {
      sources.resize(ms.width);
    }

    std::unique_ptr<MultiSourceBfsBase> bfs;
    if (ms.threads == 0) {
      bfs = MakeMsBfs(gc.graph, ms.width);
    } else if (ms.threads == 1) {
      bfs = MakeMsPbfs(gc.graph, ms.width, &serial);
    } else {
      pool = std::make_unique<WorkerPool>(WorkerPool::Options{
          .num_workers = ms.threads, .pin_threads = false});
      bfs = MakeMsPbfs(gc.graph, ms.width, pool.get());
    }

    BfsOptions options;
    options.split_size = 128;
    std::vector<Level> levels(sources.size() * n);
    MsBfsResult r = bfs->Run(sources, options, levels.data());

    uint64_t expected_visits = 0;
    for (size_t i = 0; i < sources.size(); ++i) {
      std::vector<Level> expected = ReferenceLevels(gc.graph, sources[i]);
      std::vector<Level> got(levels.begin() + i * n,
                             levels.begin() + (i + 1) * n);
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << gc.name << " width=" << ms.width << " threads=" << ms.threads
          << " bfs_index=" << i << " source=" << sources[i];
      expected_visits += testing_util::ReachableCount(gc.graph, sources[i]);
    }
    EXPECT_EQ(r.total_visits, expected_visits) << gc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndThreads, MultiSourceParam,
    ::testing::Values(MsCase{64, 0}, MsCase{128, 0}, MsCase{256, 0},
                      MsCase{512, 0}, MsCase{64, 1}, MsCase{128, 1},
                      MsCase{64, 2}, MsCase{64, 4}, MsCase{128, 4},
                      MsCase{256, 4}, MsCase{512, 3}, MsCase{64, 7}),
    [](const ::testing::TestParamInfo<MsCase>& info) {
      // Append steps, not one operator+ chain: the chain trips a GCC 12
      // -Wrestrict false positive at -O2.
      std::string name = "w";
      name += std::to_string(info.param.width);
      name += "_t";
      name += std::to_string(info.param.threads);
      return name;
    });

TEST(MultiSourceTest, FullWidthBatch) {
  // A batch that uses every bit of a 64-wide bitset.
  Graph g = Kronecker({.scale = 9, .edge_factor = 8, .seed = 31});
  std::vector<Vertex> sources = PickSources(g, 64, 3);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  std::unique_ptr<MultiSourceBfsBase> bfs = MakeMsPbfs(g, 64, &pool);
  std::vector<Level> levels(sources.size() * g.num_vertices());
  bfs->Run(sources, BfsOptions{}, levels.data());
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<Level> expected = ReferenceLevels(g, sources[i]);
    std::vector<Level> got(
        levels.begin() + i * g.num_vertices(),
        levels.begin() + (i + 1) * g.num_vertices());
    ASSERT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
        << "bfs " << i;
  }
}

TEST(MultiSourceTest, BatchReuseDoesNotLeakState) {
  Graph g = SocialNetwork({.num_vertices = 1024, .avg_degree = 8.0,
                           .seed = 41});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  std::unique_ptr<MultiSourceBfsBase> bfs = MakeMsPbfs(g, 64, &pool);
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<Vertex> sources = PickSources(g, 16, seed);
    std::vector<Level> levels(sources.size() * g.num_vertices());
    bfs->Run(sources, BfsOptions{}, levels.data());
    for (size_t i = 0; i < sources.size(); ++i) {
      std::vector<Level> expected = ReferenceLevels(g, sources[i]);
      std::vector<Level> got(
          levels.begin() + i * g.num_vertices(),
          levels.begin() + (i + 1) * g.num_vertices());
      ASSERT_EQ(testing_util::FirstLevelMismatch(expected, got), -1);
    }
  }
}

TEST(MultiSourceTest, PureTopDownMatches) {
  Graph g = Grid(31, 17);
  BfsOptions options;
  options.enable_bottom_up = false;
  SerialExecutor serial;
  std::unique_ptr<MultiSourceBfsBase> bfs = MakeMsPbfs(g, 64, &serial);
  std::vector<Vertex> sources = {0, 526, 100};
  std::vector<Level> levels(sources.size() * g.num_vertices());
  MsBfsResult r = bfs->Run(sources, options, levels.data());
  EXPECT_EQ(r.bottom_up_iterations, 0);
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<Level> expected = ReferenceLevels(g, sources[i]);
    std::vector<Level> got(
        levels.begin() + i * g.num_vertices(),
        levels.begin() + (i + 1) * g.num_vertices());
    EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1);
  }
}

TEST(MultiSourceTest, JfqComparatorMatchesReference) {
  // iBFS-style joint-frontier-queue comparator over the full graph
  // matrix, all widths.
  for (const GraphCase& gc : MakeGraphCases()) {
    const Vertex n = gc.graph.num_vertices();
    for (int width : {64, 256}) {
      std::vector<Vertex> sources;
      for (Vertex v = 0; v < n && sources.size() < 20; v += (n / 7) + 1) {
        sources.push_back(v);
      }
      std::unique_ptr<MultiSourceBfsBase> bfs = MakeJfqMsBfs(gc.graph, width);
      std::vector<Level> levels(sources.size() * n);
      MsBfsResult r = bfs->Run(sources, BfsOptions{}, levels.data());
      uint64_t expected_visits = 0;
      for (size_t i = 0; i < sources.size(); ++i) {
        std::vector<Level> expected = ReferenceLevels(gc.graph, sources[i]);
        std::vector<Level> got(levels.begin() + i * n,
                               levels.begin() + (i + 1) * n);
        EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
            << gc.name << " width=" << width << " source=" << sources[i];
        expected_visits += testing_util::ReachableCount(gc.graph, sources[i]);
      }
      EXPECT_EQ(r.total_visits, expected_visits) << gc.name;
    }
  }
}

TEST(MultiSourceTest, JfqInstanceReuse) {
  Graph g = SocialNetwork({.num_vertices = 1024, .avg_degree = 8.0,
                           .seed = 61});
  std::unique_ptr<MultiSourceBfsBase> bfs = MakeJfqMsBfs(g, 64);
  for (uint64_t seed : {1u, 2u}) {
    std::vector<Vertex> sources = PickSources(g, 16, seed);
    std::vector<Level> levels(sources.size() * g.num_vertices());
    bfs->Run(sources, BfsOptions{}, levels.data());
    for (size_t i = 0; i < sources.size(); ++i) {
      std::vector<Level> expected = ReferenceLevels(g, sources[i]);
      std::vector<Level> got(
          levels.begin() + i * g.num_vertices(),
          levels.begin() + (i + 1) * g.num_vertices());
      ASSERT_EQ(testing_util::FirstLevelMismatch(expected, got), -1);
    }
  }
}

TEST(MultiSourceTest, SequentialBaselineAndParallelAgree) {
  Graph g = Kronecker({.scale = 10, .edge_factor = 8, .seed = 53});
  std::vector<Vertex> sources = PickSources(g, 32, 9);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});

  std::unique_ptr<MultiSourceBfsBase> baseline = MakeMsBfs(g, 64);
  std::unique_ptr<MultiSourceBfsBase> parallel = MakeMsPbfs(g, 64, &pool);

  std::vector<Level> a(sources.size() * g.num_vertices());
  std::vector<Level> b(sources.size() * g.num_vertices());
  MsBfsResult ra = baseline->Run(sources, BfsOptions{}, a.data());
  MsBfsResult rb = parallel->Run(sources, BfsOptions{}, b.data());
  EXPECT_EQ(ra.total_visits, rb.total_visits);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pbfs
