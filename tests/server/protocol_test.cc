// Protocol codec property suite: randomized round-trip corpus plus
// malformed / truncated / oversized-frame rejection. All randomness is
// a pure function of PBFS_DIFF_SEED and every assertion carries the
// differential harness's reproduction banner, so a codec failure
// replays exactly like a BFS divergence does.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "differential/diff_util.h"
#include "server/protocol.h"
#include "server/server_test_util.h"
#include "util/rng.h"

namespace pbfs {
namespace server {
namespace {

using diff::NumTrials;
using diff::ReproNote;
using diff::TrialSeed;

QueryResponse RandomQueryResponse(Rng& rng, uint64_t request_id) {
  QueryResponse resp;
  resp.request_id = request_id;
  resp.type = static_cast<QueryType>(rng.NextBounded(5));
  resp.status = static_cast<QueryStatus>(rng.NextBounded(5));
  resp.sketch_resolved = rng.NextBounded(2) == 1;
  resp.snapshot_version = rng.Next();
  resp.distance = static_cast<Level>(rng.NextBounded(0x10000));
  resp.bound_lower = static_cast<Level>(rng.NextBounded(0x10000));
  resp.bound_upper = static_cast<Level>(rng.NextBounded(0x10000));
  resp.vertices_reached = rng.Next();
  const size_t num_levels = rng.NextBounded(300);
  for (size_t i = 0; i < num_levels; ++i) {
    resp.levels.push_back(static_cast<Level>(rng.NextBounded(0x10000)));
  }
  const size_t num_reachable = rng.NextBounded(16);
  for (size_t i = 0; i < num_reachable; ++i) {
    resp.reachable.push_back(static_cast<uint8_t>(rng.NextBounded(2)));
  }
  const size_t num_khop = rng.NextBounded(12);
  for (size_t i = 0; i < num_khop; ++i) {
    resp.khop_sizes.push_back(rng.Next());
  }
  return resp;
}

UpdateRequest RandomUpdateRequest(Rng& rng, uint64_t request_id) {
  UpdateRequest req;
  req.request_id = request_id;
  const size_t count = rng.NextBounded(64);
  for (size_t i = 0; i < count; ++i) {
    EdgeUpdate u;
    u.u = static_cast<Vertex>(rng.NextBounded(1 << 20));
    u.v = static_cast<Vertex>(rng.NextBounded(1 << 20));
    u.insert = rng.NextBounded(2) == 1;
    req.updates.push_back(u);
  }
  return req;
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      const QueryRequest sent =
          RandomQueryRequest(rng, 1 << 20, rng.Next());
      std::string wire;
      EncodeQueryRequest(sent, &wire);
      Request got;
      size_t consumed = 0;
      std::string error;
      ASSERT_EQ(DecodeRequest(wire, kMaxRequestBytes, &got, &consumed,
                              &error),
                DecodeStatus::kOk)
          << error << " " << note;
      ASSERT_EQ(consumed, wire.size()) << note;
      ASSERT_EQ(got.kind, MessageKind::kQuery) << note;
      ASSERT_EQ(got.query, sent) << note;
    }
  }
}

TEST(ProtocolTest, UpdateRequestRoundTrip) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      const UpdateRequest sent = RandomUpdateRequest(rng, rng.Next());
      std::string wire;
      EncodeUpdateRequest(sent, &wire);
      Request got;
      size_t consumed = 0;
      ASSERT_EQ(DecodeRequest(wire, kMaxRequestBytes, &got, &consumed),
                DecodeStatus::kOk)
          << note;
      ASSERT_EQ(got.kind, MessageKind::kEdgeUpdates) << note;
      ASSERT_TRUE(got.updates == sent) << note;
    }
  }
}

TEST(ProtocolTest, ResponseRoundTrip) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      std::string wire;
      Response got;
      size_t consumed = 0;
      if (rng.NextBounded(2) == 0) {
        const QueryResponse sent = RandomQueryResponse(rng, rng.Next());
        EncodeQueryResponse(sent, &wire);
        ASSERT_EQ(DecodeResponse(wire, kMaxResponseBytes, &got, &consumed),
                  DecodeStatus::kOk)
            << note;
        ASSERT_EQ(got.kind, MessageKind::kQuery) << note;
        ASSERT_EQ(got.query, sent) << note;
      } else {
        UpdateResponse sent;
        sent.request_id = rng.Next();
        sent.content_version = rng.Next();
        sent.num_applied = static_cast<uint32_t>(rng.NextBounded(1000));
        EncodeUpdateResponse(sent, &wire);
        ASSERT_EQ(DecodeResponse(wire, kMaxResponseBytes, &got, &consumed),
                  DecodeStatus::kOk)
            << note;
        ASSERT_EQ(got.kind, MessageKind::kEdgeUpdates) << note;
        ASSERT_EQ(got.update, sent) << note;
      }
      ASSERT_EQ(consumed, wire.size()) << note;
    }
  }
}

// Frames back to back in one buffer decode in order, each reporting
// its own consumed length.
TEST(ProtocolTest, ConcatenatedFramesDecodeInOrder) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    std::vector<QueryRequest> sent;
    std::string wire;
    for (int i = 0; i < 16; ++i) {
      sent.push_back(RandomQueryRequest(rng, 1 << 16, rng.Next()));
      EncodeQueryRequest(sent.back(), &wire);
    }
    std::string_view rest = wire;
    for (const QueryRequest& expect : sent) {
      Request got;
      size_t consumed = 0;
      ASSERT_EQ(DecodeRequest(rest, kMaxRequestBytes, &got, &consumed),
                DecodeStatus::kOk)
          << note;
      ASSERT_EQ(got.query, expect) << note;
      rest.remove_prefix(consumed);
    }
    ASSERT_TRUE(rest.empty()) << note;
  }
}

// Property: every strict prefix of a valid frame is kNeedMore — the
// incremental decoder never misreads a truncated stream as malformed
// (or worse, as a shorter valid frame).
TEST(ProtocolTest, EveryStrictPrefixNeedsMore) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    const QueryRequest sent = RandomQueryRequest(rng, 4096, rng.Next());
    std::string wire;
    EncodeQueryRequest(sent, &wire);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      Request got;
      size_t consumed = 0;
      ASSERT_EQ(DecodeRequest(std::string_view(wire).substr(0, cut),
                              kMaxRequestBytes, &got, &consumed),
                DecodeStatus::kNeedMore)
          << "prefix len " << cut << " " << note;
    }
  }
}

TEST(ProtocolTest, OversizedFrameRejectedFromHeaderAlone) {
  // Length prefix declaring (limit + 1) bytes: rejected with only the
  // 4 header bytes buffered.
  const uint32_t huge = static_cast<uint32_t>(kMaxRequestBytes) + 1;
  std::string wire;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  Request got;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeRequest(wire, kMaxRequestBytes, &got, &consumed, &error),
            DecodeStatus::kOversized);
  EXPECT_NE(error.find("exceeds limit"), std::string::npos) << error;
}

// Targeted malformed frames: each corruption must be rejected, never
// silently reinterpreted.
TEST(ProtocolTest, MalformedFramesRejected) {
  Rng rng(TrialSeed(0));
  const QueryRequest base = RandomQueryRequest(rng, 1024, 7);
  std::string valid;
  EncodeQueryRequest(base, &valid);
  const size_t kKindOffset = 4 + 8;      // length prefix + request id
  const size_t kTypeOffset = kKindOffset + 1;
  const size_t kPriorityOffset = kTypeOffset + 1;

  auto decode = [](const std::string& wire) {
    Request got;
    size_t consumed = 0;
    return DecodeRequest(wire, kMaxRequestBytes, &got, &consumed);
  };

  std::string bad_kind = valid;
  bad_kind[kKindOffset] = 9;
  EXPECT_EQ(decode(bad_kind), DecodeStatus::kMalformed);

  std::string bad_type = valid;
  bad_type[kTypeOffset] = 100;
  EXPECT_EQ(decode(bad_type), DecodeStatus::kMalformed);

  std::string bad_priority = valid;
  bad_priority[kPriorityOffset] = static_cast<char>(kNumPriorities);
  EXPECT_EQ(decode(bad_priority), DecodeStatus::kMalformed);

  // Trailing junk: payload one byte longer than the message.
  std::string trailing = valid;
  trailing.push_back('x');
  const uint32_t len = static_cast<uint32_t>(trailing.size() - 4);
  for (int i = 0; i < 4; ++i) {
    trailing[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(decode(trailing), DecodeStatus::kMalformed);

  // Target count inconsistent with the payload length. Legacy layout
  // (no trace block) so the count byte's offset from the tail is fixed.
  QueryRequest counted = base;
  counted.trace_id = 0;
  counted.trace_sampled = false;
  counted.targets = {1, 2, 3};
  std::string bad_count;
  EncodeQueryRequest(counted, &bad_count);
  const size_t count_offset = bad_count.size() - 3 * sizeof(Vertex) - 4;
  bad_count[count_offset] = 5;
  EXPECT_EQ(decode(bad_count), DecodeStatus::kMalformed);

  // Edge-update insert flag outside {0, 1}.
  UpdateRequest upd;
  upd.request_id = 9;
  upd.updates.push_back({1, 2, true});
  std::string bad_insert;
  EncodeUpdateRequest(upd, &bad_insert);
  bad_insert.back() = 2;
  EXPECT_EQ(decode(bad_insert), DecodeStatus::kMalformed);

  // Response-side: status byte beyond kShed.
  QueryResponse resp;
  resp.request_id = 1;
  std::string bad_status;
  EncodeQueryResponse(resp, &bad_status);
  bad_status[kTypeOffset + 1] = 17;  // status follows type
  Response rgot;
  size_t rconsumed = 0;
  EXPECT_EQ(DecodeResponse(bad_status, kMaxResponseBytes, &rgot, &rconsumed),
            DecodeStatus::kMalformed);
}

// Backward compatibility: a frame without the optional trace block is
// byte-identical to the pre-trace wire format and decodes with
// trace_id == 0 (the server then mints one); the same request with a
// trace context encodes exactly 9 extra trailing bytes.
TEST(ProtocolTest, LegacyFrameWithoutTraceBlockDecodes) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      QueryRequest legacy = RandomQueryRequest(rng, 1 << 16, rng.Next());
      legacy.trace_id = 0;
      legacy.trace_sampled = false;
      std::string legacy_wire;
      EncodeQueryRequest(legacy, &legacy_wire);

      QueryRequest traced = legacy;
      while (traced.trace_id == 0) traced.trace_id = rng.Next();
      traced.trace_sampled = rng.NextBounded(2) == 0;
      std::string traced_wire;
      EncodeQueryRequest(traced, &traced_wire);
      ASSERT_EQ(traced_wire.size(), legacy_wire.size() + 9) << note;

      Request got;
      size_t consumed = 0;
      std::string error;
      ASSERT_EQ(DecodeRequest(legacy_wire, kMaxRequestBytes, &got, &consumed,
                              &error),
                DecodeStatus::kOk)
          << error << " " << note;
      ASSERT_EQ(got.query.trace_id, 0u) << note;
      ASSERT_FALSE(got.query.trace_sampled) << note;
      ASSERT_EQ(got.query, legacy) << note;
    }
  }
}

// The trace block's two validity rules: the sampled flag is 0/1 and the
// id is non-zero. Violations are kMalformed, never reinterpreted.
TEST(ProtocolTest, MalformedTraceBlockRejected) {
  Rng rng(TrialSeed(1));
  QueryRequest req = RandomQueryRequest(rng, 1024, 11);
  while (req.trace_id == 0) req.trace_id = rng.Next();
  req.trace_sampled = true;
  std::string valid;
  EncodeQueryRequest(req, &valid);
  // Trailing block layout: [u8 sampled][u64 trace_id].
  const size_t sampled_offset = valid.size() - 9;

  auto decode = [](const std::string& wire, std::string* error) {
    Request got;
    size_t consumed = 0;
    return DecodeRequest(wire, kMaxRequestBytes, &got, &consumed, error);
  };

  std::string error;
  ASSERT_EQ(decode(valid, &error), DecodeStatus::kOk) << error;

  std::string bad_flag = valid;
  bad_flag[sampled_offset] = 2;
  EXPECT_EQ(decode(bad_flag, &error), DecodeStatus::kMalformed);
  EXPECT_NE(error.find("sampled"), std::string::npos) << error;

  std::string zero_id = valid;
  for (size_t i = valid.size() - 8; i < valid.size(); ++i) zero_id[i] = 0;
  EXPECT_EQ(decode(zero_id, &error), DecodeStatus::kMalformed);
  EXPECT_NE(error.find("trace id"), std::string::npos) << error;
}

// Fuzz-lite: random single-byte mutations of valid frames must decode
// to *some* status without crashing or over-consuming — exercised
// under ASan/UBSan via the `server` label.
TEST(ProtocolTest, RandomMutationsNeverCrash) {
  for (int trial = 0; trial < NumTrials(); ++trial) {
    const uint64_t seed = TrialSeed(static_cast<uint64_t>(trial));
    const std::string note = ReproNote(seed);
    Rng rng(seed);
    for (int i = 0; i < 500; ++i) {
      std::string wire;
      if (rng.NextBounded(2) == 0) {
        EncodeQueryRequest(RandomQueryRequest(rng, 512, rng.Next()), &wire);
      } else {
        EncodeUpdateRequest(RandomUpdateRequest(rng, rng.Next()), &wire);
      }
      // Mutate 1-4 bytes anywhere, length prefix included.
      const int flips = 1 + static_cast<int>(rng.NextBounded(4));
      for (int f = 0; f < flips; ++f) {
        wire[rng.NextBounded(wire.size())] =
            static_cast<char>(rng.NextBounded(256));
      }
      Request got;
      size_t consumed = 0;
      const DecodeStatus s =
          DecodeRequest(wire, kMaxRequestBytes, &got, &consumed);
      if (s == DecodeStatus::kOk) {
        ASSERT_LE(consumed, wire.size()) << note;
        ASSERT_GE(consumed, size_t{4}) << note;
      }
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace pbfs
