// Admission-controller suite: priority ordering, bounded-queue
// shedding, deadline-aware shedding driven by the EWMA cost model, and
// deadline expiry between Offer and Take — all on an injected fake
// clock (AdmissionController::Options::now_ns), zero sleeps.

#include <gtest/gtest.h>

#include "server/admission.h"

namespace pbfs {
namespace server {
namespace {

constexpr int64_t kMs = 1000000;

AdmissionTicket Ticket(uint64_t id, Priority priority,
                       int64_t deadline_ns = 0) {
  AdmissionTicket t;
  t.request_id = id;
  t.priority = priority;
  t.deadline_ns = deadline_ns;
  return t;
}

TEST(AdmissionTest, PriorityOrderThenFifoWithinPriority) {
  AdmissionController adm({.max_queue = 16});
  ASSERT_EQ(adm.Offer(Ticket(1, Priority::kLow), 0), AdmitResult::kAdmitted);
  ASSERT_EQ(adm.Offer(Ticket(2, Priority::kNormal), 0),
            AdmitResult::kAdmitted);
  ASSERT_EQ(adm.Offer(Ticket(3, Priority::kHigh), 0),
            AdmitResult::kAdmitted);
  ASSERT_EQ(adm.Offer(Ticket(4, Priority::kNormal), 0),
            AdmitResult::kAdmitted);
  AdmissionTicket t;
  bool expired = false;
  uint64_t expect[] = {3, 2, 4, 1};
  for (uint64_t id : expect) {
    ASSERT_TRUE(adm.TryTake(&t, &expired));
    EXPECT_EQ(t.request_id, id);
    EXPECT_FALSE(expired);
  }
  EXPECT_FALSE(adm.TryTake(&t, &expired));
  EXPECT_EQ(adm.GetStats().admitted, 4u);
}

TEST(AdmissionTest, BoundedQueueShedsWhenFull) {
  AdmissionController adm({.max_queue = 2});
  EXPECT_EQ(adm.Offer(Ticket(1, Priority::kHigh), 0),
            AdmitResult::kAdmitted);
  EXPECT_EQ(adm.Offer(Ticket(2, Priority::kLow), 0), AdmitResult::kAdmitted);
  // Full across priorities: even high priority sheds.
  EXPECT_EQ(adm.Offer(Ticket(3, Priority::kHigh), 0),
            AdmitResult::kShedQueueFull);
  const AdmissionController::Stats s = adm.GetStats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(s.depth, 2u);
}

TEST(AdmissionTest, DeadlineShedsWhenEstimatedWaitExceedsIt) {
  int64_t fake_now = 0;
  AdmissionController::Options o;
  o.max_queue = 64;
  o.initial_cost_ms = 10;
  o.now_ns = [&fake_now] { return fake_now; };
  AdmissionController adm(o);

  // One ticket queued ahead at the same priority: estimated wait for a
  // newcomer is (1 ahead + itself) * 10ms = 20ms.
  ASSERT_EQ(adm.Offer(Ticket(1, Priority::kNormal), 0),
            AdmitResult::kAdmitted);
  EXPECT_DOUBLE_EQ(adm.EstimatedWaitMs(Priority::kNormal, 0), 20.0);
  // 15ms of budget < 20ms estimate: shed at admission.
  EXPECT_EQ(adm.Offer(Ticket(2, Priority::kNormal, fake_now + 15 * kMs), 0),
            AdmitResult::kShedDeadline);
  // 25ms of budget: admitted.
  EXPECT_EQ(adm.Offer(Ticket(3, Priority::kNormal, fake_now + 25 * kMs), 0),
            AdmitResult::kAdmitted);
  // Higher priority ignores the normal-priority queue ahead of it...
  EXPECT_DOUBLE_EQ(adm.EstimatedWaitMs(Priority::kHigh, 0), 10.0);
  EXPECT_EQ(adm.Offer(Ticket(4, Priority::kHigh, fake_now + 15 * kMs), 0),
            AdmitResult::kAdmitted);
  // ...while downstream inflight counts against everyone.
  EXPECT_EQ(adm.Offer(Ticket(5, Priority::kHigh, fake_now + 15 * kMs), 3),
            AdmitResult::kShedDeadline);
  const AdmissionController::Stats s = adm.GetStats();
  EXPECT_EQ(s.shed_deadline, 2u);
  EXPECT_EQ(s.admitted, 3u);
}

TEST(AdmissionTest, EwmaCostModelTracksServiceTimeAndDrivesShedding) {
  int64_t fake_now = 0;
  AdmissionController::Options o;
  o.initial_cost_ms = 1;
  o.ewma_alpha = 0.5;
  o.now_ns = [&fake_now] { return fake_now; };
  AdmissionController adm(o);

  // 50ms of budget clears a 1ms cost estimate easily.
  EXPECT_EQ(adm.Offer(Ticket(1, Priority::kNormal, fake_now + 50 * kMs), 0),
            AdmitResult::kAdmitted);
  // Slow traffic observed: EWMA climbs toward 100ms.
  for (int i = 0; i < 8; ++i) adm.OnServiced(100.0);
  const double cost = adm.GetStats().cost_ewma_ms;
  EXPECT_GT(cost, 90.0);
  EXPECT_LE(cost, 100.0);
  // The same 50ms budget now sheds: one queued ahead + itself at
  // ~100ms each is far over budget.
  EXPECT_EQ(adm.Offer(Ticket(2, Priority::kNormal, fake_now + 50 * kMs), 0),
            AdmitResult::kShedDeadline);
  // Fast traffic pulls it back down.
  for (int i = 0; i < 16; ++i) adm.OnServiced(1.0);
  EXPECT_LT(adm.GetStats().cost_ewma_ms, 2.0);
}

TEST(AdmissionTest, DeadlineExpiryBetweenOfferAndTake) {
  int64_t fake_now = 0;
  AdmissionController::Options o;
  o.initial_cost_ms = 1;
  o.now_ns = [&fake_now] { return fake_now; };
  AdmissionController adm(o);

  ASSERT_EQ(adm.Offer(Ticket(1, Priority::kNormal, 5 * kMs), 0),
            AdmitResult::kAdmitted);
  ASSERT_EQ(adm.Offer(Ticket(2, Priority::kNormal, 500 * kMs), 0),
            AdmitResult::kAdmitted);
  // Time passes while the tickets queue.
  fake_now = 10 * kMs;
  AdmissionTicket t;
  bool expired = false;
  ASSERT_TRUE(adm.TryTake(&t, &expired));
  EXPECT_EQ(t.request_id, 1u);
  EXPECT_TRUE(expired);  // 5ms deadline passed at 10ms
  ASSERT_TRUE(adm.TryTake(&t, &expired));
  EXPECT_EQ(t.request_id, 2u);
  EXPECT_FALSE(expired);
  EXPECT_EQ(adm.GetStats().expired_in_queue, 1u);
}

TEST(AdmissionTest, StopUnblocksTakeAndShedsOffers) {
  AdmissionController adm({});
  adm.Stop();
  AdmissionTicket t;
  bool expired = false;
  EXPECT_FALSE(adm.Take(&t, &expired));  // returns, does not block
  EXPECT_EQ(adm.Offer(Ticket(1, Priority::kHigh), 0),
            AdmitResult::kShedQueueFull);
}

}  // namespace
}  // namespace server
}  // namespace pbfs
