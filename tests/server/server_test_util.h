// Shared helpers for the server test suites (tests/server/,
// tests/soak/): random wire-request generation with the diff_util seed
// discipline, and the bridge from wire responses back to QueryResult
// so the dynamic harness's rebuild-then-BFS oracle (dyn::DiffResult)
// diffs network answers unchanged.
#ifndef PBFS_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define PBFS_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <string>
#include <vector>

#include "differential/diff_util.h"
#include "dynamic/dynamic_util.h"
#include "engine/query.h"
#include "server/protocol.h"
#include "util/rng.h"

namespace pbfs {
namespace server {

// Uniformly random query request over an n-vertex graph. Query types
// cycle through all five; deadline_ms == 0 (none) unless the caller
// overrides it.
inline QueryRequest RandomQueryRequest(Rng& rng, Vertex n,
                                       uint64_t request_id) {
  QueryRequest req;
  req.request_id = request_id;
  req.type = static_cast<QueryType>(rng.NextBounded(5));
  req.priority = static_cast<Priority>(rng.NextBounded(kNumPriorities));
  req.source = static_cast<Vertex>(rng.NextBounded(n));
  switch (req.type) {
    case QueryType::kLevels:
      break;
    case QueryType::kDistances:
    case QueryType::kReachability: {
      const size_t count = 1 + rng.NextBounded(8);
      for (size_t i = 0; i < count; ++i) {
        req.targets.push_back(static_cast<Vertex>(rng.NextBounded(n)));
      }
      break;
    }
    case QueryType::kKHop:
      req.max_hops = static_cast<Level>(1 + rng.NextBounded(6));
      break;
    case QueryType::kPointToPointDistance:
      req.targets.push_back(static_cast<Vertex>(rng.NextBounded(n)));
      // Exact answers only: sketch-resolved bounded answers would need
      // bracket (not equality) checking; tolerance 0 still allows the
      // sketch fast path when the bounds pinch to the truth.
      req.tolerance = 0;
      break;
  }
  // Half the corpus carries a client trace context (the optional
  // trailing wire block), half is the legacy frame layout.
  if (rng.NextBounded(2) == 0) {
    while (req.trace_id == 0) req.trace_id = rng.Next();
    req.trace_sampled = rng.NextBounded(4) == 0;
  }
  return req;
}

// Bridge: a wire response as the engine result it encodes, so
// dyn::DiffResult applies verbatim.
inline QueryResult ToQueryResult(const QueryResponse& resp) {
  QueryResult r;
  r.status = resp.status;
  r.levels.assign(resp.levels.begin(), resp.levels.end());
  r.reachable = resp.reachable;
  r.khop_sizes = resp.khop_sizes;
  r.vertices_reached = resp.vertices_reached;
  r.distance = resp.distance;
  r.distance_bounds = {resp.bound_lower, resp.bound_upper};
  r.sketch_resolved = resp.sketch_resolved;
  r.snapshot_version = resp.snapshot_version;
  return r;
}

// The request as a dyn::QuerySpec, for oracle diffing.
inline dyn::QuerySpec ToSpec(const QueryRequest& req) {
  dyn::QuerySpec spec;
  spec.type = req.type;
  spec.source = req.source;
  spec.targets = req.targets;
  spec.max_hops = req.max_hops;
  return spec;
}

// Diffs one wire response against the rebuild-then-BFS oracle graph
// its snapshot_version maps to. Empty string = match.
inline std::string DiffWireResponse(const Graph& oracle_graph,
                                    const QueryRequest& req,
                                    const QueryResponse& resp) {
  return dyn::DiffResult(oracle_graph, ToSpec(req), ToQueryResult(resp));
}

}  // namespace server
}  // namespace pbfs

#endif  // PBFS_TESTS_SERVER_SERVER_TEST_UTIL_H_
