// Session FSM suite: timeout transitions, backpressure window
// open/close, drain, and protocol-error paths — all driven by a fake
// clock (plain int64_t nanoseconds passed into every entry point, the
// StallWatchdog pattern), so nothing here sleeps.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/session.h"

namespace pbfs {
namespace server {
namespace {

constexpr int64_t kMs = 1000000;

// One encoded minimal kLevels query frame.
std::string QueryFrame(uint64_t request_id) {
  QueryRequest req;
  req.request_id = request_id;
  std::string wire;
  EncodeQueryRequest(req, &wire);
  return wire;
}

SessionOptions SmallTimeouts() {
  SessionOptions o;
  o.idle_timeout_ms = 100;
  o.frame_timeout_ms = 10;
  o.backpressure_timeout_ms = 50;
  o.drain_timeout_ms = 20;
  return o;
}

TEST(SessionFsmTest, TableHasNoTransitionOutOfClosed) {
  for (const SessionTransition& t : Session::Transitions()) {
    EXPECT_NE(t.from, SessionState::kClosed)
        << "row " << Session::EventName(t.event);
    // Destinations are real states or the documented sentinel.
    EXPECT_TRUE(t.to == kAutoResume ||
                static_cast<int>(t.to) < kNumSessionStates);
  }
  // Names are total.
  for (int s = 0; s < kNumSessionStates; ++s) {
    EXPECT_STRNE(Session::StateName(static_cast<SessionState>(s)),
                 "UNKNOWN");
  }
}

TEST(SessionFsmTest, IdleTimeoutClosesExactlyAtThreshold) {
  Session s(1, SmallTimeouts(), 0);
  EXPECT_EQ(s.state(), SessionState::kAwaitFrame);
  EXPECT_TRUE(s.OnTick(99 * kMs));
  EXPECT_EQ(s.state(), SessionState::kAwaitFrame);
  EXPECT_FALSE(s.OnTick(100 * kMs));
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "idle_timeout");
}

TEST(SessionFsmTest, PartialFrameTimesOutWithoutTrickleReset) {
  Session s(1, SmallTimeouts(), 0);
  const std::string frame = QueryFrame(1);
  std::vector<Request> out;
  // First byte arrives at t=0: kAwaitFrame -> kInFrame arms the timer.
  ASSERT_TRUE(s.OnBytes(frame.substr(0, 1), 0, &out));
  EXPECT_EQ(s.state(), SessionState::kInFrame);
  // A trickle byte at t=9ms must NOT refresh the frame timer.
  ASSERT_TRUE(s.OnBytes(frame.substr(1, 1), 9 * kMs, &out));
  EXPECT_FALSE(s.OnTick(10 * kMs));
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "frame_timeout");
  EXPECT_TRUE(out.empty());
}

TEST(SessionFsmTest, CompleteFrameReturnsToAwaitAndDisarmsFrameTimer) {
  Session s(1, SmallTimeouts(), 0);
  const std::string frame = QueryFrame(42);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(frame.substr(0, 5), 0, &out));
  EXPECT_EQ(s.state(), SessionState::kInFrame);
  ASSERT_TRUE(s.OnBytes(frame.substr(5), 5 * kMs, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query.request_id, 42u);
  EXPECT_EQ(s.state(), SessionState::kAwaitFrame);
  EXPECT_EQ(s.inflight(), 1u);
  // The frame timer is gone; the idle timer does not fire while a
  // request is in flight (the engine owns that wait).
  EXPECT_TRUE(s.OnTick(500 * kMs));
  EXPECT_EQ(s.state(), SessionState::kAwaitFrame);
}

TEST(SessionFsmTest, IdleTimeoutAppliesOnceWindowEmpties) {
  SessionOptions o = SmallTimeouts();
  Session s(1, o, 0);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 0, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(s.OnTick(400 * kMs));  // inflight > 0: no idle close
  std::string resp = "resp";
  std::vector<Request> resumed;
  s.OnResponseQueued(resp, 400 * kMs, &resumed);
  EXPECT_EQ(s.inflight(), 0u);
  // Window empty again; idle timer runs from kAwaitFrame entry (t=0,
  // the state never changed), so it fires on the next tick.
  EXPECT_FALSE(s.OnTick(401 * kMs));
  EXPECT_EQ(s.close_reason(), "idle_timeout");
}

TEST(SessionFsmTest, WindowFullPausesReadsAndResumesAtLowWater) {
  SessionOptions o = SmallTimeouts();
  o.max_inflight = 2;
  o.resume_inflight = 1;
  Session s(1, o, 0);
  std::string three;
  three += QueryFrame(1);
  three += QueryFrame(2);
  three += QueryFrame(3);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(three, 0, &out));
  // Two decoded, the third stays buffered behind the full window.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(s.state(), SessionState::kBackpressured);
  EXPECT_FALSE(s.WantRead());
  EXPECT_EQ(s.inflight(), 2u);
  EXPECT_GT(s.rx_buffered(), 0u);
  EXPECT_EQ(s.backpressure_events(), 1u);

  // One response: inflight 1 == low water, window reopens, the
  // buffered frame decodes — and refills the window.
  std::vector<Request> resumed;
  s.OnResponseQueued("r1", 1 * kMs, &resumed);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0].query.request_id, 3u);
  EXPECT_EQ(s.state(), SessionState::kBackpressured);
  EXPECT_EQ(s.backpressure_events(), 2u);

  // Draining the window with no bytes buffered reopens for reads.
  resumed.clear();
  s.OnResponseQueued("r2", 2 * kMs, &resumed);
  EXPECT_TRUE(resumed.empty());
  s.OnResponseQueued("r3", 2 * kMs, &resumed);
  EXPECT_TRUE(resumed.empty());
  EXPECT_EQ(s.inflight(), 0u);
  EXPECT_EQ(s.state(), SessionState::kAwaitFrame);
  EXPECT_TRUE(s.WantRead());
}

TEST(SessionFsmTest, BackpressureTimeoutCloses) {
  SessionOptions o = SmallTimeouts();
  o.max_inflight = 1;
  o.resume_inflight = 0;
  Session s(1, o, 0);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 0, &out));
  EXPECT_EQ(s.state(), SessionState::kBackpressured);
  EXPECT_TRUE(s.OnTick(49 * kMs));
  EXPECT_FALSE(s.OnTick(50 * kMs));
  EXPECT_EQ(s.close_reason(), "backpressure_timeout");
}

TEST(SessionFsmTest, ShutdownDrainsThenCloses) {
  Session s(1, SmallTimeouts(), 0);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 0, &out));
  std::vector<Request> resumed;
  s.OnResponseQueued("pending-bytes", 1 * kMs, &resumed);
  s.OnShutdown(2 * kMs);
  EXPECT_EQ(s.state(), SessionState::kDraining);
  EXPECT_FALSE(s.WantRead());
  // Partial flush keeps draining; the rest closes it.
  s.ConsumeTx(3, 3 * kMs);
  EXPECT_EQ(s.state(), SessionState::kDraining);
  s.ConsumeTx(s.Tx().size(), 4 * kMs);
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "drained");
}

TEST(SessionFsmTest, ShutdownWithNothingPendingClosesImmediately) {
  Session s(1, SmallTimeouts(), 0);
  s.OnShutdown(1 * kMs);
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "drained");
}

TEST(SessionFsmTest, ShutdownWaitsForInflightResponses) {
  Session s(1, SmallTimeouts(), 0);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 0, &out));
  ASSERT_EQ(s.inflight(), 1u);
  s.OnShutdown(1 * kMs);
  // In flight: stays draining even with empty tx.
  EXPECT_EQ(s.state(), SessionState::kDraining);
  std::vector<Request> resumed;
  s.OnResponseQueued("late-response", 2 * kMs, &resumed);
  EXPECT_EQ(s.state(), SessionState::kDraining);  // tx now pending
  s.ConsumeTx(s.Tx().size(), 3 * kMs);
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "drained");
}

TEST(SessionFsmTest, DrainTimeoutBoundsShutdown) {
  Session s(1, SmallTimeouts(), 0);
  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 0, &out));
  std::vector<Request> resumed;
  s.OnResponseQueued("unconsumed", 1 * kMs, &resumed);
  s.OnShutdown(2 * kMs);
  EXPECT_EQ(s.state(), SessionState::kDraining);
  EXPECT_TRUE(s.OnTick(21 * kMs));
  EXPECT_FALSE(s.OnTick(22 * kMs));  // drain_timeout_ms=20 after entry
  EXPECT_EQ(s.close_reason(), "drain_timeout");
}

TEST(SessionFsmTest, MalformedFrameClosesWithProtocolError) {
  Session s(1, SmallTimeouts(), 0);
  std::string bad = QueryFrame(1);
  bad[4 + 8] = 99;  // unknown message kind
  std::vector<Request> out;
  EXPECT_FALSE(s.OnBytes(bad, 0, &out));
  EXPECT_EQ(s.state(), SessionState::kClosed);
  EXPECT_EQ(s.close_reason(), "protocol_error");
  EXPECT_FALSE(s.decode_error().empty());
  EXPECT_TRUE(out.empty());
}

TEST(SessionFsmTest, OversizedFrameClosesWithProtocolError) {
  SessionOptions o = SmallTimeouts();
  o.max_frame_bytes = 64;
  Session s(1, o, 0);
  QueryRequest req;
  req.request_id = 1;
  req.targets.assign(100, 3);  // frame well over 64 bytes
  std::string wire;
  EncodeQueryRequest(req, &wire);
  std::vector<Request> out;
  EXPECT_FALSE(s.OnBytes(wire, 0, &out));
  EXPECT_EQ(s.close_reason(), "protocol_error");
}

TEST(SessionFsmTest, PeerCloseFromEveryOpenState) {
  // kAwaitFrame.
  Session a(1, SmallTimeouts(), 0);
  a.OnPeerClosed(0);
  EXPECT_EQ(a.state(), SessionState::kClosed);
  EXPECT_EQ(a.close_reason(), "peer_closed");
  // kInFrame.
  Session b(2, SmallTimeouts(), 0);
  std::vector<Request> out;
  ASSERT_TRUE(b.OnBytes(QueryFrame(1).substr(0, 2), 0, &out));
  b.OnPeerClosed(0);
  EXPECT_EQ(b.state(), SessionState::kClosed);
  // Events after close are ignored, not resurrecting.
  b.OnShutdown(0);
  EXPECT_FALSE(b.OnTick(1000 * kMs));
  EXPECT_EQ(b.state(), SessionState::kClosed);
}

TEST(SessionFsmTest, EvictionClosesFromEveryOpenState) {
  // kAwaitFrame.
  Session a(1, SmallTimeouts(), 0);
  a.OnEvicted(1 * kMs);
  EXPECT_EQ(a.state(), SessionState::kClosed);
  EXPECT_EQ(a.close_reason(), "evicted");

  // kInFrame.
  Session b(2, SmallTimeouts(), 0);
  std::vector<Request> out;
  ASSERT_TRUE(b.OnBytes(QueryFrame(1).substr(0, 2), 0, &out));
  ASSERT_EQ(b.state(), SessionState::kInFrame);
  b.OnEvicted(1 * kMs);
  EXPECT_EQ(b.state(), SessionState::kClosed);
  EXPECT_EQ(b.close_reason(), "evicted");

  // kBackpressured.
  SessionOptions o = SmallTimeouts();
  o.max_inflight = 1;
  o.resume_inflight = 0;
  Session c(3, o, 0);
  ASSERT_TRUE(c.OnBytes(QueryFrame(1), 0, &out));
  ASSERT_EQ(c.state(), SessionState::kBackpressured);
  c.OnEvicted(1 * kMs);
  EXPECT_EQ(c.state(), SessionState::kClosed);
  EXPECT_EQ(c.close_reason(), "evicted");

  // kDraining.
  Session d(4, SmallTimeouts(), 0);
  out.clear();
  ASSERT_TRUE(d.OnBytes(QueryFrame(1), 0, &out));
  d.OnShutdown(1 * kMs);
  ASSERT_EQ(d.state(), SessionState::kDraining);
  d.OnEvicted(2 * kMs);
  EXPECT_EQ(d.state(), SessionState::kClosed);
  EXPECT_EQ(d.close_reason(), "evicted");

  // Already closed: ignored, close_reason untouched.
  Session e(5, SmallTimeouts(), 0);
  e.OnPeerClosed(0);
  e.OnEvicted(1 * kMs);
  EXPECT_EQ(e.close_reason(), "peer_closed");
}

// last_activity_ns drives the server's least-recently-active victim
// choice; it must advance on every sign of life — received bytes,
// queued responses, consumed tx — and on nothing else.
TEST(SessionFsmTest, LastActivityTracksTraffic) {
  Session s(1, SmallTimeouts(), 7 * kMs);
  EXPECT_EQ(s.last_activity_ns(), 7 * kMs);

  std::vector<Request> out;
  ASSERT_TRUE(s.OnBytes(QueryFrame(1), 10 * kMs, &out));
  EXPECT_EQ(s.last_activity_ns(), 10 * kMs);

  // Ticks are the poll loop's clock, not peer traffic.
  EXPECT_TRUE(s.OnTick(20 * kMs));
  EXPECT_EQ(s.last_activity_ns(), 10 * kMs);

  std::vector<Request> resumed;
  s.OnResponseQueued("resp", 30 * kMs, &resumed);
  EXPECT_EQ(s.last_activity_ns(), 30 * kMs);

  // A zero-byte flush is not activity; a real one is.
  s.ConsumeTx(0, 40 * kMs);
  EXPECT_EQ(s.last_activity_ns(), 30 * kMs);
  s.ConsumeTx(1, 41 * kMs);
  EXPECT_EQ(s.last_activity_ns(), 41 * kMs);
}

}  // namespace
}  // namespace server
}  // namespace pbfs
