// End-to-end server suite over real loopback sockets: mixed queries
// diffed against the oracle, versioned edge updates, overload
// shedding, backpressure resume, protocol-error disconnect, and
// graceful stop. Labeled `server` so both sanitizer CI legs run it —
// the poll/submit/completion threads against concurrent clients are
// exactly the interleavings TSan is for.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "differential/diff_util.h"
#include "dynamic/dynamic_util.h"
#include "graph/generators.h"
#ifdef PBFS_TRACING
#include "obs/query_trace.h"
#endif
#include "sched/worker_pool.h"
#include "server/client.h"
#include "server/server.h"
#include "server/server_test_util.h"
#include "util/rng.h"

namespace pbfs {
namespace server {
namespace {

using diff::ReproNote;
using diff::TrialSeed;

TEST(ServerE2eTest, MixedQueriesMatchOracleOverSocket) {
  const uint64_t seed = TrialSeed(1);
  const std::string note = ReproNote(seed);
  const Graph graph = ErdosRenyi(256, 1024, seed);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  PbfsServer srv(&engine, {});
  ASSERT_TRUE(srv.Start());
  ASSERT_GT(srv.port(), 0);

  constexpr int kClients = 3;
  constexpr int kQueriesPerClient = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(SplitMix64(seed + static_cast<uint64_t>(c)));
      PbfsClient client;
      ASSERT_TRUE(client.Connect({.port = srv.port()}));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const QueryRequest req = RandomQueryRequest(
            rng, graph.num_vertices(),
            static_cast<uint64_t>(c) * 1000 + static_cast<uint64_t>(q));
        QueryResponse resp;
        std::string error;
        ASSERT_TRUE(client.Call(req, &resp, &error)) << error << " " << note;
        ASSERT_EQ(resp.status, QueryStatus::kOk) << note;
        const std::string diff = DiffWireResponse(graph, req, resp);
        if (!diff.empty()) {
          ++mismatches;
          ADD_FAILURE() << diff << " " << note;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = srv.GetStats();
  EXPECT_EQ(stats.admission.admitted, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.queries_ok, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
  srv.Stop();
}

TEST(ServerE2eTest, EdgeUpdatesAckWithContentVersionAndQueriesSeeThem) {
  const uint64_t seed = TrialSeed(2);
  const std::string note = ReproNote(seed);
  const Graph graph = ErdosRenyi(128, 400, seed);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  PbfsServer srv(&engine, {});
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));

  dyn::EdgeSet edges = dyn::GraphToSet(graph);
  Rng rng(seed);
  uint64_t next_id = 1;
  for (int round = 0; round < 5; ++round) {
    UpdateRequest upd;
    upd.request_id = next_id++;
    for (int i = 0; i < 20; ++i) {
      EdgeUpdate op;
      op.u = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      op.v = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      op.insert = rng.NextBounded(2) == 1;
      upd.updates.push_back(op);
    }
    UpdateResponse ack;
    std::string error;
    ASSERT_TRUE(client.ApplyUpdates(upd, &ack, &error)) << error << " "
                                                        << note;
    ASSERT_EQ(ack.num_applied, upd.updates.size());
    dyn::ApplyToSet(edges, upd.updates);
    const Graph oracle =
        Graph::FromEdges(graph.num_vertices(), dyn::SetToEdges(edges));

    // A query submitted after the ack must run against a snapshot at
    // least as new as the acked content version, and on this quiet
    // connection exactly it (no competing updaters).
    QueryRequest req;
    req.request_id = next_id++;
    req.type = QueryType::kLevels;
    req.source = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
    QueryResponse resp;
    ASSERT_TRUE(client.Call(req, &resp, &error)) << error << " " << note;
    ASSERT_EQ(resp.status, QueryStatus::kOk) << note;
    EXPECT_EQ(resp.snapshot_version, ack.content_version) << note;
    EXPECT_EQ(DiffWireResponse(oracle, req, resp), "") << note;
  }
  const ServerStats stats = srv.GetStats();
  EXPECT_EQ(stats.updates_applied, 5u);
  srv.Stop();
}

TEST(ServerE2eTest, OverloadBurstShedsInsteadOfQueueing) {
  const uint64_t seed = TrialSeed(3);
  const Graph graph = ErdosRenyi(2048, 8192, seed);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  ServerOptions opts;
  opts.admission.max_queue = 2;
  opts.max_engine_inflight = 1;
  opts.session.max_inflight = 128;
  opts.session.resume_inflight = 64;
  PbfsServer srv(&engine, opts);
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.type = QueryType::kLevels;
    req.source = static_cast<Vertex>(i % graph.num_vertices());
    EncodeQueryRequest(req, &burst);
  }
  ASSERT_TRUE(client.Send(burst));

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    Response resp;
    std::string error;
    ASSERT_TRUE(client.ReadResponse(&resp, &error)) << error << " after "
                                                    << i << " responses";
    ASSERT_EQ(resp.kind, MessageKind::kQuery);
    if (resp.query.status == QueryStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.query.status, QueryStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  // A 64-query burst against queue cap 2 + inflight cap 1 must shed.
  EXPECT_GT(shed, 0);
  const ServerStats stats = srv.GetStats();
  EXPECT_EQ(stats.admission.shed_queue_full + stats.admission.shed_deadline,
            static_cast<uint64_t>(shed));
  EXPECT_EQ(stats.admission.admitted, static_cast<uint64_t>(ok));
  // The bounded queue never exceeded its cap (depth is current, so
  // just sanity-check the invariant fields).
  EXPECT_LE(stats.admission.depth, opts.admission.max_queue);
  srv.Stop();
}

TEST(ServerE2eTest, BackpressurePausesReadsThenAnswersEverything) {
  const uint64_t seed = TrialSeed(4);
  const Graph graph = ErdosRenyi(64, 128, seed);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  ServerOptions opts;
  opts.session.max_inflight = 4;
  opts.session.resume_inflight = 2;
  PbfsServer srv(&engine, opts);
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  constexpr int kCount = 100;
  std::string pipelined;
  for (int i = 0; i < kCount; ++i) {
    QueryRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.type = QueryType::kReachability;
    req.source = static_cast<Vertex>(i % graph.num_vertices());
    req.targets = {static_cast<Vertex>((i + 1) % graph.num_vertices())};
    EncodeQueryRequest(req, &pipelined);
  }
  ASSERT_TRUE(client.Send(pipelined));
  std::vector<bool> seen(kCount, false);
  for (int i = 0; i < kCount; ++i) {
    Response resp;
    std::string error;
    ASSERT_TRUE(client.ReadResponse(&resp, &error)) << error << " after "
                                                    << i;
    ASSERT_EQ(resp.kind, MessageKind::kQuery);
    ASSERT_LT(resp.query.request_id, static_cast<uint64_t>(kCount));
    EXPECT_FALSE(seen[resp.query.request_id]) << "duplicate response";
    seen[resp.query.request_id] = true;
  }
  const ServerStats stats = srv.GetStats();
  // 100 pipelined requests against a window of 4 had to pause reads.
  EXPECT_GT(stats.backpressure_events, 0u);
  EXPECT_EQ(stats.frames_rx, static_cast<uint64_t>(kCount));
  srv.Stop();
}

TEST(ServerE2eTest, MalformedFrameClosesConnection) {
  const Graph graph = ErdosRenyi(32, 64, 1);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  PbfsServer srv(&engine, {});
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  QueryRequest req;
  req.request_id = 1;
  std::string wire;
  EncodeQueryRequest(req, &wire);
  wire[4 + 8] = 42;  // unknown message kind
  ASSERT_TRUE(client.Send(wire));
  Response resp;
  std::string error;
  // The server closes without answering.
  EXPECT_FALSE(client.ReadResponse(&resp, &error));
  // Poll loop reaps the session; stats follow shortly.
  for (int i = 0; i < 100; ++i) {
    if (srv.GetStats().protocol_errors > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(srv.GetStats().protocol_errors, 1u);
  srv.Stop();
}

TEST(ServerE2eTest, GracefulStopUnderPendingLoadDoesNotHang) {
  const Graph graph = ErdosRenyi(1024, 4096, 5);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  ServerOptions opts;
  opts.session.drain_timeout_ms = 200;  // bound the test, not 5 s
  opts.max_engine_inflight = 2;
  PbfsServer srv(&engine, opts);
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  std::string burst;
  for (int i = 0; i < 20; ++i) {
    QueryRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.type = QueryType::kLevels;
    req.source = static_cast<Vertex>(i);
    EncodeQueryRequest(req, &burst);
  }
  ASSERT_TRUE(client.Send(burst));
  // Stop with queries pending: must complete within the drain bounds
  // (joins all three threads) rather than hanging.
  srv.Stop();
  SUCCEED();
}

// At the connection cap the server reclaims the least-recently-active
// session instead of refusing the newcomer; the evicted peer sees its
// connection close and the stats count the eviction.
TEST(ServerE2eTest, ConnectionCapEvictsLeastRecentlyActive) {
  const Graph graph = ErdosRenyi(64, 128, 6);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  ServerOptions opts;
  opts.max_sessions = 2;
  PbfsServer srv(&engine, opts);
  ASSERT_TRUE(srv.Start());

  auto query = [&](PbfsClient& client, uint64_t id) {
    QueryRequest req;
    req.request_id = id;
    req.type = QueryType::kLevels;
    req.source = 0;
    QueryResponse resp;
    std::string error;
    ASSERT_TRUE(client.Call(req, &resp, &error)) << error;
    ASSERT_EQ(resp.status, QueryStatus::kOk);
  };

  PbfsClient a;
  ASSERT_TRUE(a.Connect({.port = srv.port()}));
  query(a, 1);
  PbfsClient b;
  ASSERT_TRUE(b.Connect({.port = srv.port()}));
  query(b, 2);  // b is now the more recently active of the two

  // Third connection: the cap forces out a — the least recently active.
  PbfsClient c;
  ASSERT_TRUE(c.Connect({.port = srv.port()}));
  query(c, 3);
  for (int i = 0; i < 100 && srv.GetStats().sessions_evicted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(srv.GetStats().sessions_evicted, 1u);

  // The evicted peer's connection is dead; the survivors still answer.
  Response stale;
  std::string error;
  EXPECT_FALSE(a.ReadResponse(&stale, &error));
  query(b, 4);
  query(c, 5);
  srv.Stop();
}

#ifdef PBFS_TRACING
// A client-supplied trace context survives the whole pipeline: the
// sampled query's span tree lands in the flight recorder under the
// client's id, with the record's stage durations telescoping to its
// wire latency and carrying the snapshot it actually ran on.
TEST(ServerE2eTest, ClientTraceIdFlowsToRetainedRecord) {
  obs::QueryTraceStore& store = obs::QueryTraceStore::Get();
  obs::QueryTraceStore::Options trace_opts;
  trace_opts.slow_ms = 0;     // only sampled/shed/error retain:
  trace_opts.p99_factor = 0;  // deterministic regardless of timing
  trace_opts.emit_spans = false;
  store.Configure(trace_opts);

  const Graph graph = ErdosRenyi(128, 512, 7);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  PbfsServer srv(&engine, {});
  ASSERT_TRUE(srv.Start());

  PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  constexpr uint64_t kClientTraceId = 0xABCDEF0123456789ULL;
  QueryRequest req;
  req.request_id = 77;
  req.type = QueryType::kLevels;
  req.source = 3;
  req.trace_id = kClientTraceId;
  req.trace_sampled = true;
  QueryResponse resp;
  std::string error;
  ASSERT_TRUE(client.Call(req, &resp, &error)) << error;
  ASSERT_EQ(resp.status, QueryStatus::kOk);

  // The server Finishes the trace on the completion thread as it queues
  // the response, so it may land a beat after the client reads it.
  std::vector<obs::QueryTraceRecord> retained;
  for (int i = 0; i < 100; ++i) {
    retained = store.Retained();
    if (!retained.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(retained.size(), 1u);
  const obs::QueryTraceRecord& r = retained[0];
  EXPECT_EQ(r.trace_id, kClientTraceId);
  EXPECT_EQ(r.request_id, 77u);
  EXPECT_NE(r.session_id, 0u);
  EXPECT_TRUE(r.sampled);
  EXPECT_STREQ(r.retain_reason, "sampled");
  EXPECT_EQ(r.outcome, obs::QueryOutcome::kOk);
  EXPECT_EQ(r.snapshot_version, resp.snapshot_version);
  EXPECT_GT(r.wire_latency_ns, 0);
  int64_t stage_sum = 0;
  for (int i = 0; i < obs::kNumQueryStageSpans; ++i) {
    EXPECT_GE(r.StageDurNs(i), 0) << "stage " << i;
    stage_sum += r.StageDurNs(i);
  }
  EXPECT_EQ(stage_sum, r.wire_latency_ns);

  // An unsampled fast query through the same pipeline retains nothing.
  req.request_id = 78;
  req.trace_id = 0;
  req.trace_sampled = false;
  ASSERT_TRUE(client.Call(req, &resp, &error)) << error;
  for (int i = 0; i < 100 && store.GetStats(0).discarded_total == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(store.Retained().size(), 1u);
  EXPECT_GE(store.GetStats(0).discarded_total, 1u);
  srv.Stop();
  store.Configure(obs::QueryTraceStore::Options());  // restore defaults
}
#endif  // PBFS_TRACING

}  // namespace
}  // namespace server
}  // namespace pbfs
