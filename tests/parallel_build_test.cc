#include "graph/parallel_build.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sched/worker_pool.h"

namespace pbfs {
namespace {

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    for (size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
    }
  }
}

class ParallelBuildTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBuildTest, MatchesSequentialBuilder) {
  WorkerPool pool({.num_workers = GetParam(), .pin_threads = false});
  struct Case {
    const char* name;
    Vertex n;
    std::vector<Edge> edges;
  };
  std::vector<Case> cases;
  cases.push_back({"empty", 0, {}});
  cases.push_back({"isolated", 5, {}});
  cases.push_back({"loops_and_dups",
                   4,
                   {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 3}, {3, 3}}});
  cases.push_back({"kron", 1 << 12,
                   KroneckerEdges({.scale = 12, .edge_factor = 8,
                                   .seed = 19})});
  cases.push_back({"social", 4096,
                   SocialNetworkEdges({.num_vertices = 4096,
                                       .avg_degree = 12.0, .seed = 23})});
  for (const Case& c : cases) {
    Graph sequential = Graph::FromEdges(c.n, c.edges);
    Graph parallel = BuildGraphParallel(c.n, c.edges, &pool);
    SCOPED_TRACE(c.name);
    ExpectSameGraph(sequential, parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelBuildTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(ParallelBuildTest, SerialExecutorWorksToo) {
  SerialExecutor serial;
  std::vector<Edge> edges = ErdosRenyiEdges(1000, 5000, 3);
  Graph sequential = Graph::FromEdges(1000, edges);
  Graph parallel = BuildGraphParallel(1000, edges, &serial);
  ExpectSameGraph(sequential, parallel);
}

}  // namespace
}  // namespace pbfs
