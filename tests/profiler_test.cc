// Tests for the sampling profiler (obs/profiler): phase-word packing,
// the live-backend known-symbol self-test, bounded fold-table memory
// under stack churn, the degradation contract (mirrors
// perf_counters_test), and the sample/counter-span attribution join.
//
// The live-backend test GTEST_SKIPs with the profiler's own sticky
// reason when no backend comes up (e.g. a container that denies both
// perf_event_open and ITIMER_PROF); everything else runs without any
// signal delivery via IngestSampleForTest. Labeled "obs" in CMake.

#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifdef PBFS_TRACING
#include "obs/profiler/phase_profile.h"
#include "obs/profiler/phase_tag.h"
#include "obs/profiler/sampling_profiler.h"
#include "obs/profiler/symbolize.h"
#include "obs/trace.h"
#endif

namespace pbfs {
namespace {

#ifndef PBFS_TRACING

TEST(ProfilerTest, SkippedWithoutTracing) {
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
}

#else  // PBFS_TRACING

using obs::BfsPhase;
using obs::ClearCurrentBfsPhase;
using obs::CurrentPhaseWord;
using obs::DecodePhaseWord;
using obs::FoldedProfileText;
using obs::PhaseAttribution;
using obs::PhaseLabel;
using obs::PhaseProfileStore;
using obs::ProfileCounts;
using obs::SamplingProfiler;
using obs::SetCurrentBfsPhase;
using obs::SubtractProfiles;
using obs::Symbolizer;
using obs::TraceDump;
using obs::TraceEvent;
using obs::TraceEventType;
using obs::TraceThreadDump;

// Scoped env var so a failing assertion cannot leak the forced
// environment into later tests (same pattern as perf_counters_test).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

int64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

TEST(PhaseTagTest, PackDecodeRoundTrips) {
  SetCurrentBfsPhase("queue-pbfs.level", 7, false);
  const uint64_t word = CurrentPhaseWord();
  EXPECT_NE(word, 0u);
  BfsPhase phase = DecodePhaseWord(word);
  ASSERT_TRUE(phase.active());
  EXPECT_STREQ(phase.variant, "queue-pbfs.level");
  EXPECT_EQ(phase.level, 7u);
  EXPECT_FALSE(phase.bottom_up);

  SetCurrentBfsPhase("ms-pbfs.level", 12, true);
  phase = DecodePhaseWord(CurrentPhaseWord());
  ASSERT_TRUE(phase.active());
  EXPECT_STREQ(phase.variant, "ms-pbfs.level");
  EXPECT_EQ(phase.level, 12u);
  EXPECT_TRUE(phase.bottom_up);

  ClearCurrentBfsPhase();
  EXPECT_EQ(CurrentPhaseWord(), 0u);
  EXPECT_FALSE(DecodePhaseWord(0).active());
}

TEST(PhaseTagTest, InterningIsIdempotentPerContent) {
  // Same content through a different pointer must land on the same
  // index — the handler stores the index, not the pointer.
  static const char kCopyA[] = "intern-test.level";
  std::string copy_b = "intern-test.level";
  const int a = obs::InternPhaseName(kCopyA);
  ASSERT_GE(a, 0);
  EXPECT_EQ(obs::InternPhaseName(copy_b.c_str()), a);
  EXPECT_STREQ(obs::PhaseNameByIndex(a), "intern-test.level");
  EXPECT_EQ(obs::PhaseNameByIndex(-1), nullptr);
}

TEST(ProfilerTest, SubtractProfilesClampsAndDiffsByKey) {
  ProfileCounts base, cand;
  ProfileCounts::Entry e;
  e.pcs = {0x100};
  e.phase_word = 0;
  e.key = 10;
  e.count = 3;
  base.entries.push_back(e);
  base.total_samples = 3;
  e.count = 8;
  cand.entries.push_back(e);  // grew by 5
  e.pcs = {0x200};
  e.key = 20;
  e.count = 2;
  cand.entries.push_back(e);  // new stack
  cand.total_samples = 10;

  const ProfileCounts delta = SubtractProfiles(cand, base);
  ASSERT_EQ(delta.entries.size(), 2u);
  EXPECT_EQ(delta.entries[0].count, 5u);
  EXPECT_EQ(delta.entries[1].count, 2u);
  EXPECT_EQ(delta.total_samples, 7u);
  // Reversed order clamps to zero instead of wrapping.
  const ProfileCounts reverse = SubtractProfiles(base, cand);
  EXPECT_EQ(reverse.total_samples, 0u);
  EXPECT_TRUE(reverse.entries.empty());
}

// Burns CPU in a frame the profiler must be able to name. extern "C"
// noinline so the symbol survives optimization with a predictable name.
extern "C" __attribute__((noinline)) uint64_t
pbfs_profiler_test_spin(int64_t budget_ns) {
  const int64_t start = ThreadCpuNs();
  volatile uint64_t sink = 0;
  while (ThreadCpuNs() - start < budget_ns) {
    for (int i = 0; i < 4096; ++i) sink = sink + i * i;
  }
  return sink;
}

// End-to-end: a live backend must catch the spin function red-handed,
// with the sample tagged by the phase that was current at signal time.
TEST(ProfilerTest, KnownSymbolAppearsInFoldedStacks) {
  SamplingProfiler& profiler = SamplingProfiler::Get();
  SamplingProfiler::RegisterCurrentThread();
  SamplingProfiler::Options options;
  options.sample_hz = 997;  // dense sampling keeps the spin short
  if (!profiler.Start(options)) {
    GTEST_SKIP() << profiler.unavailable_reason();
  }
  SetCurrentBfsPhase("test-variant.level", 3, true);
  pbfs_profiler_test_spin(400 * 1000 * 1000);  // ~400ms of CPU
  ClearCurrentBfsPhase();
  profiler.Stop();

  const SamplingProfiler::Stats stats = profiler.stats();
  EXPECT_STRNE(stats.backend, "none");
  ASSERT_GT(stats.samples, 0u) << "backend " << stats.backend
                               << " delivered no samples";

  const ProfileCounts counts = profiler.Snapshot();
  EXPECT_EQ(counts.SampleSum(), counts.total_samples);
  Symbolizer symbolizer;
  if (symbolizer.symbol_count() == 0) {
    GTEST_SKIP() << "no symbols loadable from /proc/self/maps";
  }
  const std::string folded = FoldedProfileText(counts, &symbolizer);
  EXPECT_NE(folded.find("pbfs_profiler_test_spin"), std::string::npos)
      << "spin frame missing from:\n"
      << folded.substr(0, 2000);
  EXPECT_NE(folded.find("test-variant/L3/bu;"), std::string::npos)
      << "phase tag missing from:\n"
      << folded.substr(0, 2000);
}

// The fold table must stay bounded no matter how many distinct stacks
// arrive: overflow collapses into per-phase "[truncated]" buckets and
// the sample totals are conserved.
TEST(ProfilerTest, FoldTableBoundedUnderStackChurn) {
  // Record a small cap without starting a backend (options are applied
  // before the availability check, and a failed Start does not clear
  // previously folded samples).
  ScopedEnv disable("PBFS_PROFILER_DISABLE", "1");
  SamplingProfiler& profiler = SamplingProfiler::Get();
  SamplingProfiler::Options options;
  options.max_unique_stacks = 64;
  EXPECT_FALSE(profiler.Start(options));

  const ProfileCounts base = profiler.Snapshot();
  SetCurrentBfsPhase("churn-test.level", 1, false);
  const uint64_t phase_word = CurrentPhaseWord();
  ClearCurrentBfsPhase();
  constexpr int kDistinctStacks = 1000;
  for (int i = 0; i < kDistinctStacks; ++i) {
    uintptr_t pcs[2] = {0x400000u + static_cast<uintptr_t>(i) * 16, 0x500000u};
    profiler.IngestSampleForTest(pcs, 2, phase_word);
  }
  const ProfileCounts end = profiler.Snapshot();

  // Growth is bounded by the cap (+1 for the truncated bucket), even
  // though 1000 distinct stacks arrived.
  EXPECT_LE(end.entries.size(),
            std::max(base.entries.size(), size_t{64}) + 1);
  EXPECT_GT(end.truncated, base.truncated);
  EXPECT_EQ(end.total_samples - base.total_samples,
            static_cast<uint64_t>(kDistinctStacks));
  // Conservation: every folded sample is accounted for in some bucket.
  EXPECT_EQ(end.SampleSum(), end.total_samples);
  // The truncated bucket renders as "[truncated]" instead of vanishing.
  const std::string folded = FoldedProfileText(end, nullptr);
  EXPECT_NE(folded.find("[truncated]"), std::string::npos);
}

// Degradation contract, mirroring PerfCounters: the kill switch makes
// Start() fail with a sticky, self-explanatory reason; PBFS_PERF_DISABLE
// only vetoes the perf-ring backend and sampling continues via SIGPROF.
TEST(ProfilerTest, DisableEnvironmentContract) {
  SamplingProfiler& profiler = SamplingProfiler::Get();
  {
    ScopedEnv disable("PBFS_PROFILER_DISABLE", "1");
    EXPECT_FALSE(profiler.Start());
    EXPECT_FALSE(profiler.running());
    EXPECT_EQ(profiler.backend(), SamplingProfiler::Backend::kNone);
    EXPECT_NE(std::string(profiler.unavailable_reason())
                  .find("PBFS_PROFILER_DISABLE"),
              std::string::npos)
        << profiler.unavailable_reason();
    // "0" means unset, like the other PBFS_* switches.
    setenv("PBFS_PROFILER_DISABLE", "0", 1);
    ScopedEnv perf_disable("PBFS_PERF_DISABLE", "1");
    if (!profiler.Start()) {
      GTEST_SKIP() << profiler.unavailable_reason();
    }
    EXPECT_TRUE(profiler.running());
    EXPECT_EQ(profiler.backend(), SamplingProfiler::Backend::kSigprofTimer);
    EXPECT_STREQ(SamplingProfiler::BackendName(profiler.backend()), "sigprof");
    EXPECT_STREQ(profiler.unavailable_reason(), "");
    profiler.Stop();
    EXPECT_FALSE(profiler.running());
  }
  // Each Start re-reads the environment, so the process can go
  // disabled -> live across sessions.
  if (profiler.Start()) {
    EXPECT_TRUE(profiler.running());
    profiler.Stop();
  }
}

// The attribution join: samples keyed by phase word meet counter spans
// keyed by (span name, level, bottom_up) args on the same row.
TEST(PhaseProfileTest, AttributionJoinsSamplesWithCounterSpans) {
  SetCurrentBfsPhase("ms-pbfs.level", 3, true);
  const uint64_t phase_word = CurrentPhaseWord();
  ClearCurrentBfsPhase();

  ProfileCounts counts;
  ProfileCounts::Entry entry;
  entry.pcs = {0x1234, 0x5678};  // leaf first
  entry.phase_word = phase_word;
  entry.count = 7;
  entry.key = 1;
  counts.entries.push_back(entry);
  counts.total_samples = 7;

  TraceDump dump;
  TraceThreadDump thread;
  TraceEvent span;
  span.name = "ms-pbfs.level";
  span.type = TraceEventType::kSpan;
  span.dur_ns = 5 * 1000 * 1000;
  span.AddArg("level", 3);
  span.AddArg("bottom_up", 1);
  span.AddArg("edges_scanned", 1000);
  span.AddArg("cycles", 2000);
  span.AddArg("instructions", 4000);
  span.AddArg("llc_loads", 100);
  span.AddArg("llc_misses", 50);
  thread.events.push_back(span);
  // A span with no `level` arg must not contaminate the table.
  TraceEvent not_a_level;
  not_a_level.name = "compact.level";
  not_a_level.type = TraceEventType::kSpan;
  thread.events.push_back(not_a_level);
  dump.threads.push_back(thread);

  PhaseProfileStore store;
  store.SetSamples(counts);
  store.MergeSpans(dump);
  const PhaseAttribution attribution = store.BuildAttribution(nullptr);

  ASSERT_EQ(attribution.rows.size(), 1u);
  const auto& row = attribution.rows[0];
  EXPECT_EQ(row.variant, "ms-pbfs");
  EXPECT_EQ(row.level, 3);
  EXPECT_TRUE(row.bottom_up);
  EXPECT_EQ(PhaseLabel(row.variant, row.level, row.bottom_up),
            "ms-pbfs/L3/bu");
  EXPECT_EQ(row.samples, 7u);
  EXPECT_DOUBLE_EQ(row.samples_pct, 100.0);
  EXPECT_EQ(row.span_count, 1u);
  EXPECT_DOUBLE_EQ(row.wall_ms, 5.0);
  EXPECT_TRUE(row.have_counters);
  EXPECT_EQ(row.cycles, 2000u);
  EXPECT_EQ(row.instructions, 4000u);
  EXPECT_EQ(row.edges_scanned, 1000u);
  ASSERT_FALSE(row.top_frames.empty());
  EXPECT_NE(row.top_frames[0].find("1234"), std::string::npos)
      << row.top_frames[0];

  const std::string json = obs::AttributionJsonArray(attribution);
  EXPECT_NE(json.find("\"variant\":\"ms-pbfs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ipc\":2"), std::string::npos) << json;
  const std::string report = obs::AttributionReportText(attribution);
  EXPECT_NE(report.find("ms-pbfs/L3/bu"), std::string::npos) << report;
}

// Samples with no matching span (and spans with no samples) still get
// rows — degradation on either side must not hide the phase.
TEST(PhaseProfileTest, OneSidedPhasesStillGetRows) {
  SetCurrentBfsPhase("sample-only.level", 1, false);
  const uint64_t phase_word = CurrentPhaseWord();
  ClearCurrentBfsPhase();

  ProfileCounts counts;
  ProfileCounts::Entry entry;
  entry.pcs = {0xabc};
  entry.phase_word = phase_word;
  entry.count = 4;
  entry.key = 9;
  counts.entries.push_back(entry);
  // An untagged sample (phase word 0) lands on the unattributed row.
  entry.pcs = {0xdef};
  entry.phase_word = 0;
  entry.count = 1;
  entry.key = 11;
  counts.entries.push_back(entry);
  counts.total_samples = 5;

  TraceDump dump;
  TraceThreadDump thread;
  TraceEvent span;
  span.name = "span-only.level";
  span.type = TraceEventType::kSpan;
  span.dur_ns = 1000000;
  span.AddArg("level", 0);
  thread.events.push_back(span);
  dump.threads.push_back(thread);

  PhaseProfileStore store;
  store.SetSamples(counts);
  store.MergeSpans(dump);
  const PhaseAttribution attribution = store.BuildAttribution(nullptr);

  bool saw_sample_only = false, saw_span_only = false, saw_unattributed = false;
  for (const auto& row : attribution.rows) {
    if (row.variant == "sample-only") {
      saw_sample_only = true;
      EXPECT_EQ(row.samples, 4u);
      EXPECT_FALSE(row.have_counters);
    } else if (row.variant == "span-only") {
      saw_span_only = true;
      EXPECT_EQ(row.samples, 0u);
      EXPECT_EQ(row.span_count, 1u);
    } else if (row.variant == "unattributed") {
      saw_unattributed = true;
      EXPECT_EQ(row.level, -1);
      EXPECT_EQ(row.samples, 1u);
    }
  }
  EXPECT_TRUE(saw_sample_only);
  EXPECT_TRUE(saw_span_only);
  EXPECT_TRUE(saw_unattributed);
}

#endif  // PBFS_TRACING

}  // namespace
}  // namespace pbfs
