// Final coverage pass: small contracts not pinned down elsewhere.

#include <gtest/gtest.h>

#include "algorithms/closeness.h"
#include "algorithms/eccentricity.h"
#include "algorithms/parents.h"
#include "bfs/batch.h"
#include "graph/generators.h"
#include "sched/task_queues.h"
#include "sched/worker_pool.h"
#include "test_util.h"

namespace pbfs {
namespace {

TEST(TaskQueuesTest, EmptyLoopYieldsNoTasks) {
  TaskQueues queues(3);
  queues.Reset(0, 64);
  EXPECT_EQ(queues.num_tasks(), 0u);
  int cursor = 0;
  EXPECT_TRUE(queues.Fetch(0, &cursor).empty());
  EXPECT_TRUE(queues.Fetch(2, &cursor).empty());
}

TEST(TaskQueuesTest, FewerTasksThanWorkers) {
  // 2 tasks, 8 workers: queues 2..7 are empty; everyone can still fetch.
  TaskQueues queues(8);
  queues.Reset(100, 64);
  EXPECT_EQ(queues.num_tasks(), 2u);
  int cursor = 0;
  TaskRange a = queues.Fetch(5, &cursor);  // steals from queue 0 or 1
  EXPECT_FALSE(a.empty());
  TaskRange b = queues.Fetch(5, &cursor);
  EXPECT_FALSE(b.empty());
  EXPECT_NE(a.begin, b.begin);
  EXPECT_TRUE(queues.Fetch(5, &cursor).empty());
}

TEST(MakeBatchesTest, BatchLargerThanSources) {
  std::vector<Vertex> sources = {1, 2, 3};
  auto batches = MakeBatches(sources, 64);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 3u);
}

TEST(WorkerPoolTest, MoreWorkersThanTasks) {
  WorkerPool pool({.num_workers = 8, .pin_threads = false});
  std::atomic<uint64_t> covered{0};
  pool.ParallelFor(10, 64, [&](int, uint64_t b, uint64_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 10u);
}

TEST(ClosenessTest, DirectionPolicyDoesNotChangeScores) {
  Graph g = SocialNetwork({.num_vertices = 512, .avg_degree = 8.0,
                           .seed = 77});
  SerialExecutor serial;
  ClosenessOptions hybrid;
  ClosenessOptions top_down;
  top_down.bfs.enable_bottom_up = false;
  ClosenessResult a = ComputeCloseness(g, &serial, hybrid);
  ClosenessResult b = ComputeCloseness(g, &serial, top_down);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(a.score[v], b.score[v]) << v;
    EXPECT_DOUBLE_EQ(a.harmonic[v], b.harmonic[v]) << v;
  }
}

TEST(DiameterTest, SingleSweepIsSourceEccentricityBound) {
  Graph g = Path(30);
  SerialExecutor serial;
  DiameterEstimate one = EstimateDiameter(g, 15, &serial, /*sweeps=*/1);
  EXPECT_EQ(one.lower_bound, 15);  // farthest from the middle
  EXPECT_EQ(one.bfs_runs, 1);
  DiameterEstimate two = EstimateDiameter(g, 15, &serial, /*sweeps=*/2);
  EXPECT_EQ(two.lower_bound, 29);  // second sweep from an endpoint
}

TEST(ParentsTest, ParallelDerivationOnRealPool) {
  Graph g = Kronecker({.scale = 11, .edge_factor = 8, .seed = 41});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  Vertex source = PickSources(g, 1, 3)[0];
  std::vector<Level> levels = testing_util::ReferenceLevels(g, source);
  std::vector<Vertex> parents =
      DeriveParentsParallel(g, source, levels.data(), &pool);
  std::string error;
  EXPECT_TRUE(ValidateParents(g, source, parents, levels.data(), &error))
      << error;
}

TEST(BatchTest, Width1024SingleBatch) {
  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                           .seed = 13});
  ComponentInfo components = ComputeComponents(g);
  std::vector<Vertex> sources = PickSources(g, 1000, 4);
  BatchOptions options;
  options.width = 1024;
  options.batch_size = 1024;
  options.num_threads = 2;
  options.pin_threads = false;
  BatchReport report = RunMultiSourceBatches(g, sources, BatchMode::kParallel,
                                             options, &components);
  EXPECT_EQ(report.num_batches, 1);
  uint64_t expected = 0;
  for (Vertex s : sources) {
    expected += components.vertex_count[components.component_of[s]];
  }
  EXPECT_EQ(report.total_visits, expected);
}

TEST(GraphTest, NeighborsSpanIsStable) {
  // The span must point into the CSR arrays (no copies).
  Graph g = Path(10);
  auto a = g.Neighbors(5);
  auto b = g.Neighbors(5);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.data(), g.targets() + g.offsets()[5]);
}

}  // namespace
}  // namespace pbfs
