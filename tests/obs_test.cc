// Invariant suite for the obs tracing subsystem (src/obs).
//
// The traces are not treated as best-effort diagnostics: every number
// the instrumentation reports is pinned against ground truth computed
// independently. Per-level edges_scanned of a pure top-down SMS-PBFS
// must equal the oracle's degree sums, states_updated must reproduce
// the sequential reached count, scheduler fetch/steal counters must
// balance exactly-once under adversarial steal schedules, and the
// Chrome trace JSON must round-trip through a real parser even with
// hostile event names. Labeled "obs" in CMake; see docs/observability.md.

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bfs/multi_source.h"
#include "bfs/sequential.h"
#include "bfs/single_source.h"
#include "graph/generators.h"
#include "sched/steal_policy.h"
#include "sched/worker_pool.h"

#ifdef PBFS_TRACING
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"
#endif

namespace pbfs {
namespace {

#ifndef PBFS_TRACING

TEST(ObsTest, SkippedWithoutTracing) {
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
}

#else  // PBFS_TRACING

using obs::AggregateMetrics;
using obs::ChromeTraceJson;
using obs::MetricsSnapshot;
using obs::TraceDump;
using obs::TraceEvent;
using obs::TraceEventType;
using obs::Tracer;
using obs::TraceThreadDump;

// All events named `name`, across every thread of the dump.
std::vector<TraceEvent> EventsNamed(const TraceDump& dump,
                                    std::string_view name) {
  std::vector<TraceEvent> out;
  for (const TraceThreadDump& thread : dump.threads) {
    for (const TraceEvent& event : thread.events) {
      if (event.name != nullptr && name == event.name) out.push_back(event);
    }
  }
  return out;
}

uint64_t SumArg(const std::vector<TraceEvent>& events, std::string_view arg) {
  uint64_t sum = 0;
  for (const TraceEvent& event : events) sum += event.Arg(arg);
  return sum;
}

// ---------------------------------------------------------------------
// Span structure invariants.
// ---------------------------------------------------------------------

TEST(ObsTraceTest, SpansNestOrAreDisjointAndTimestampsAreMonotonic) {
  Graph graph = SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                               .seed = 11});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  std::unique_ptr<SingleSourceBfsBase> bfs =
      MakeSmsPbfs(graph, SmsVariant::kByte, &pool);

  Tracer::Get().Start();
  std::vector<Level> levels(graph.num_vertices());
  bfs->Run(3, BfsOptions{}, levels.data());
  bfs->Run(99, BfsOptions{}, levels.data());
  TraceDump dump = Tracer::Get().Stop();

  ASSERT_GE(dump.threads.size(), 2u);  // coordinator + at least 1 worker
  EXPECT_EQ(dump.total_dropped(), 0u);
  for (const TraceThreadDump& thread : dump.threads) {
    // Events are recorded at their end, so record order is end-time
    // order per thread.
    int64_t prev_end = dump.session_start_ns;
    for (const TraceEvent& event : thread.events) {
      EXPECT_GE(event.end_ns(), prev_end) << "thread " << thread.label;
      EXPECT_GE(event.dur_ns, 0) << "thread " << thread.label;
      prev_end = event.end_ns();
    }
    // Any two spans on one thread are disjoint or properly nested --
    // the thread is a call stack, not an interval soup.
    std::vector<const TraceEvent*> spans;
    for (const TraceEvent& event : thread.events) {
      if (event.type == TraceEventType::kSpan) spans.push_back(&event);
    }
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        const TraceEvent& a = *spans[i];
        const TraceEvent& b = *spans[j];
        const bool disjoint =
            a.end_ns() <= b.ts_ns || b.end_ns() <= a.ts_ns;
        const bool a_in_b = a.ts_ns >= b.ts_ns && a.end_ns() <= b.end_ns();
        const bool b_in_a = b.ts_ns >= a.ts_ns && b.end_ns() <= a.end_ns();
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << thread.label << ": " << a.name << " [" << a.ts_ns << ","
            << a.end_ns() << ") vs " << b.name << " [" << b.ts_ns << ","
            << b.end_ns() << ")";
      }
    }
  }
  // The per-run span contains its per-level spans (same thread, both
  // present).
  EXPECT_EQ(EventsNamed(dump, "sms-pbfs-byte.run").size(), 2u);
  EXPECT_GT(EventsNamed(dump, "sms-pbfs-byte.level").size(), 0u);
}

// ---------------------------------------------------------------------
// Kernel counter invariants against the sequential oracle.
// ---------------------------------------------------------------------

struct OracleLevels {
  std::vector<Level> levels;
  uint64_t reached = 0;
  Level max_level = 0;
  // degree_sum[d] = sum of degrees over oracle vertices at level d.
  std::vector<uint64_t> degree_sum;
  // count[d] = number of oracle vertices at level d.
  std::vector<uint64_t> count;
};

OracleLevels RunOracle(const Graph& graph, Vertex source) {
  OracleLevels oracle;
  oracle.levels.resize(graph.num_vertices());
  SequentialBfs(graph, source, oracle.levels.data());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const Level d = oracle.levels[v];
    if (d == kLevelUnreached) continue;
    ++oracle.reached;
    oracle.max_level = std::max(oracle.max_level, d);
    if (oracle.degree_sum.size() <= d) {
      oracle.degree_sum.resize(d + 1, 0);
      oracle.count.resize(d + 1, 0);
    }
    oracle.degree_sum[d] += graph.Degree(v);
    ++oracle.count[d];
  }
  return oracle;
}

void CheckTopDownLevels(SmsVariant variant, const char* level_span) {
  Graph graph = SocialNetwork({.num_vertices = 4096, .avg_degree = 6.0,
                               .seed = 17});
  const Vertex source = 42;
  OracleLevels oracle = RunOracle(graph, source);
  ASSERT_GT(oracle.max_level, 2) << "test graph too shallow";

  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  std::unique_ptr<SingleSourceBfsBase> bfs =
      MakeSmsPbfs(graph, variant, &pool);
  BfsOptions options;
  options.enable_bottom_up = false;  // every level scans the frontier

  Tracer::Get().Start();
  std::vector<Level> levels(graph.num_vertices());
  bfs->Run(source, options, levels.data());
  TraceDump dump = Tracer::Get().Stop();
  ASSERT_EQ(dump.total_dropped(), 0u);

  const std::vector<TraceEvent> events = EventsNamed(dump, level_span);
  // One event per iteration: levels 1..max_level discover vertices, and
  // one final iteration scans the last frontier and discovers nothing.
  ASSERT_EQ(events.size(), static_cast<size_t>(oracle.max_level) + 1);
  std::set<uint64_t> seen_levels;
  for (const TraceEvent& event : events) {
    const uint64_t d = event.Arg("level");
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, static_cast<uint64_t>(oracle.max_level) + 1);
    EXPECT_TRUE(seen_levels.insert(d).second) << "duplicate level " << d;
    EXPECT_EQ(event.Arg("bottom_up"), 0u);
    // A pure top-down iteration at depth d scans exactly the outgoing
    // edges of the depth-(d-1) frontier and discovers exactly the
    // oracle's depth-d vertices.
    EXPECT_EQ(event.Arg("edges_scanned"), oracle.degree_sum[d - 1])
        << "level " << d;
    const uint64_t expected_updates =
        d < oracle.count.size() ? oracle.count[d] : 0;
    EXPECT_EQ(event.Arg("states_updated"), expected_updates) << "level " << d;
    const uint64_t expected_frontier = oracle.count[d - 1];
    EXPECT_EQ(event.Arg("frontier"), expected_frontier) << "level " << d;
  }
  // Totals: every reached vertex's adjacency is scanned exactly once,
  // and every reached vertex except the source is discovered once.
  uint64_t total_degree = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (oracle.levels[v] != kLevelUnreached) total_degree += graph.Degree(v);
  }
  EXPECT_EQ(SumArg(events, "edges_scanned"), total_degree);
  EXPECT_EQ(SumArg(events, "states_updated") + 1, oracle.reached);
}

TEST(ObsKernelTest, TopDownLevelCountersMatchOracleByte) {
  CheckTopDownLevels(SmsVariant::kByte, "sms-pbfs-byte.level");
}

TEST(ObsKernelTest, TopDownLevelCountersMatchOracleBit) {
  CheckTopDownLevels(SmsVariant::kBit, "sms-pbfs-bit.level");
}

TEST(ObsKernelTest, DirectionOptimizedStatesUpdatedMatchOracle) {
  // Dense enough that the Beamer heuristic goes bottom-up in the middle
  // levels; states_updated must still sum to the reached count.
  Graph graph = SocialNetwork({.num_vertices = 4096, .avg_degree = 16.0,
                               .seed = 5});
  const Vertex source = 7;
  OracleLevels oracle = RunOracle(graph, source);

  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  for (SmsVariant variant : {SmsVariant::kByte, SmsVariant::kBit,
                             SmsVariant::kQueue}) {
    std::unique_ptr<SingleSourceBfsBase> bfs =
        MakeSmsPbfs(graph, variant, &pool);
    Tracer::Get().Start();
    BfsResult result = bfs->Run(source, BfsOptions{}, nullptr);
    TraceDump dump = Tracer::Get().Stop();

    const std::string span_name =
        std::string(SmsVariantName(variant)) + ".level";
    const std::vector<TraceEvent> events = EventsNamed(dump, span_name);
    ASSERT_GT(events.size(), 0u) << span_name;
    EXPECT_EQ(SumArg(events, "states_updated") + 1, oracle.reached)
        << span_name;
    EXPECT_EQ(result.vertices_visited, oracle.reached) << span_name;
    // bottom_up tags must reproduce the kernel's own iteration count
    // (which only counts iterations that discovered something).
    uint64_t bottom_up_discovering = 0;
    for (const TraceEvent& event : events) {
      if (event.Arg("bottom_up") == 1 && event.Arg("states_updated") > 0) {
        ++bottom_up_discovering;
      }
    }
    EXPECT_EQ(bottom_up_discovering,
              static_cast<uint64_t>(result.bottom_up_iterations))
        << span_name;
    // The heuristic must actually have switched directions for this
    // graph, or the test is not exercising the bottom-up tagging.
    if (variant == SmsVariant::kByte) {
      EXPECT_GT(result.bottom_up_iterations, 0);
    }
  }
}

TEST(ObsKernelTest, MsPbfsStatesUpdatedMatchLevelsOutput) {
  Graph graph = SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                               .seed = 23});
  const Vertex n = graph.num_vertices();
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  std::unique_ptr<MultiSourceBfsBase> bfs = MakeMsPbfs(graph, 64, &pool);

  std::vector<Vertex> sources;
  for (Vertex s = 0; s < 16; ++s) sources.push_back(s * 97 % n);
  std::vector<Level> levels(static_cast<size_t>(sources.size()) * n);

  Tracer::Get().Start();
  bfs->Run(sources, BfsOptions{}, levels.data());
  TraceDump dump = Tracer::Get().Stop();

  // states_updated counts vertices gaining at least one new BFS bit in
  // an iteration; a vertex is counted once per distinct positive level
  // at which some source first reaches it.
  uint64_t expected = 0;
  for (Vertex v = 0; v < n; ++v) {
    std::set<Level> distinct;
    for (size_t i = 0; i < sources.size(); ++i) {
      const Level d = levels[i * n + v];
      if (d != kLevelUnreached && d > 0) distinct.insert(d);
    }
    expected += distinct.size();
  }
  const std::vector<TraceEvent> events = EventsNamed(dump, "ms-pbfs.level");
  ASSERT_GT(events.size(), 0u);
  EXPECT_EQ(SumArg(events, "states_updated"), expected);

  const std::vector<TraceEvent> runs = EventsNamed(dump, "ms-pbfs.run");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].Arg("width"), 64u);
  EXPECT_EQ(runs[0].Arg("sources"), sources.size());
}

// ---------------------------------------------------------------------
// Scheduler counter invariants.
// ---------------------------------------------------------------------

TEST(ObsSchedTest, TaskCountsBalanceUnderPerturbedSchedules) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  for (const NamedStealPolicy& schedule : PerturbationSchedules()) {
    if (schedule.name != "steal_heavy" && schedule.name != "starvation") {
      continue;
    }
    pool.SetStealPolicy(schedule.policy);
    Tracer::Get().Start();
    constexpr uint64_t kTotal = 10000;
    constexpr uint32_t kSplit = 64;
    std::atomic<uint64_t> touched{0};
    for (int round = 0; round < 3; ++round) {
      pool.ParallelFor(kTotal, kSplit, [&](int, uint64_t b, uint64_t e) {
        touched.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
    pool.SetStealPolicy(nullptr);
    TraceDump dump = Tracer::Get().Stop();

    // Exactly-once element coverage, independent of the trace.
    EXPECT_EQ(touched.load(), 3 * kTotal) << schedule.name;

    // Per loop id: the workers' local+stolen fetches must account for
    // every task exactly once.
    const std::vector<TraceEvent> loops =
        EventsNamed(dump, "sched.parallel_for");
    const std::vector<TraceEvent> worker_loops =
        EventsNamed(dump, "sched.worker_loop");
    ASSERT_EQ(loops.size(), 3u) << schedule.name;
    std::map<uint64_t, uint64_t> fetched_by_loop;
    for (const TraceEvent& event : worker_loops) {
      fetched_by_loop[event.Arg("loop")] +=
          event.Arg("local") + event.Arg("stolen");
    }
    for (const TraceEvent& loop : loops) {
      const uint64_t expected_tasks = (kTotal + kSplit - 1) / kSplit;
      EXPECT_EQ(loop.Arg("tasks"), expected_tasks) << schedule.name;
      EXPECT_EQ(fetched_by_loop[loop.Arg("loop")], expected_tasks)
          << schedule.name << " loop " << loop.Arg("loop");
    }
    // Every worker ran the loop body (even if it fetched nothing), so
    // each loop has one span per worker.
    EXPECT_EQ(worker_loops.size(), 3u * 4u) << schedule.name;
#ifdef PBFS_SCHED_PERTURB
    // steal_heavy forces thieves ahead of owners, so steals must
    // actually appear; the invariant holds either way, but the schedule
    // must be exercised. (Without the perturbation hooks compiled in,
    // SetStealPolicy is inert and natural scheduling may not steal.)
    if (schedule.name == "steal_heavy") {
      EXPECT_GT(SumArg(worker_loops, "stolen"), 0u);
    }
#endif
  }
}

TEST(ObsSchedTest, WorkerSpansComeFromDistinctLabeledThreads) {
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  Tracer::Get().Start();
  pool.ParallelFor(4096, 64, [](int, uint64_t, uint64_t) {});
  TraceDump dump = Tracer::Get().Stop();

  std::set<std::string> worker_labels;
  for (const TraceThreadDump& thread : dump.threads) {
    if (thread.worker_id >= 0) {
      EXPECT_EQ(thread.label,
                "worker-" + std::to_string(thread.worker_id));
      worker_labels.insert(thread.label);
    }
  }
  EXPECT_EQ(worker_labels.size(), 3u);
}

// ---------------------------------------------------------------------
// Ring-buffer behavior.
// ---------------------------------------------------------------------

TEST(ObsTraceTest, FullRingDropsNewestAndCountsDrops) {
  Tracer::Options options;
  options.events_per_thread = 4;
  Tracer::Get().Start(options);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event = obs::MakeInstant("tick", NowNanos());
    event.AddArg("i", static_cast<uint64_t>(i));
    Tracer::Get().Record(event);
  }
  TraceDump dump = Tracer::Get().Stop();
  ASSERT_EQ(dump.threads.size(), 1u);
  EXPECT_EQ(dump.threads[0].events.size(), 4u);
  EXPECT_EQ(dump.threads[0].dropped, 6u);
  // Drop-newest: the *first* four events survive.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dump.threads[0].events[i].Arg("i"), i);
  }
  // The drop count reaches the exported JSON.
  EXPECT_NE(ChromeTraceJson(dump).find("\"dropped_events\":6"),
            std::string::npos);
}

// Overflow accounting must stay exact when many writers fill their
// rings at once: the rings are strictly per-thread, so each thread
// keeps exactly its first `capacity` events (drop-newest) and counts
// the rest, with no cross-thread interference in either tally.
TEST(ObsTraceTest, ConcurrentWritersOverflowWithExactDropAccounting) {
  constexpr int kThreads = 8;
  constexpr uint64_t kCapacity = 4;
  constexpr uint64_t kEventsPerThread = 100;

  Tracer::Options options;
  options.events_per_thread = kCapacity;
  Tracer::Get().Start(options);

  std::atomic<int> ready{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ready] {
      // Rendezvous so the rings fill while all writers are live, not
      // one thread at a time.
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (uint64_t i = 0; i < kEventsPerThread; ++i) {
        TraceEvent event = obs::MakeInstant("flood", NowNanos());
        event.AddArg("i", i);
        Tracer::Get().Record(event);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  TraceDump dump = Tracer::Get().Stop();

  ASSERT_EQ(dump.threads.size(), static_cast<size_t>(kThreads));
  for (const TraceThreadDump& thread : dump.threads) {
    ASSERT_EQ(thread.events.size(), kCapacity);
    EXPECT_EQ(thread.dropped, kEventsPerThread - kCapacity);
    // Drop-newest per ring: the kept prefix is that thread's first
    // kCapacity events, in order.
    for (uint64_t i = 0; i < kCapacity; ++i) {
      EXPECT_EQ(thread.events[i].Arg("i"), i);
    }
  }
  EXPECT_EQ(dump.total_events(), kThreads * kCapacity);
  EXPECT_EQ(dump.total_dropped(),
            kThreads * (kEventsPerThread - kCapacity));
  EXPECT_NE(ChromeTraceJson(dump).find(
                "\"dropped_events\":" +
                std::to_string(kThreads * (kEventsPerThread - kCapacity))),
            std::string::npos);
}

TEST(ObsTraceTest, SessionsAreIndependent) {
  Tracer::Get().Start();
  Tracer::Get().Record(obs::MakeInstant("first-session", NowNanos()));
  TraceDump first = Tracer::Get().Stop();
  EXPECT_EQ(first.total_events(), 1u);

  Tracer::Get().Start();
  Tracer::Get().Record(obs::MakeInstant("second-session", NowNanos()));
  TraceDump second = Tracer::Get().Stop();
  EXPECT_EQ(second.total_events(), 1u);
  EXPECT_TRUE(EventsNamed(second, "first-session").empty());

  // Recording outside a session is a no-op, not an error.
  Tracer::Get().Record(obs::MakeInstant("orphan", NowNanos()));
}

// ---------------------------------------------------------------------
// Chrome trace JSON: structural validity and escaping round-trip,
// checked with a real (if tiny) recursive-descent JSON parser rather
// than substring matching.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw ctrl
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          if (code > 0x7F) return false;  // exporter only emits ASCII \u
          *out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(ObsJsonTest, ZeroEventDumpIsValidJson) {
  Tracer::Get().Start();
  TraceDump dump = Tracer::Get().Stop();
  EXPECT_EQ(dump.total_events(), 0u);

  JsonValue root;
  ASSERT_TRUE(JsonParser(ChromeTraceJson(dump)).Parse(&root));
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::kArray);
  EXPECT_TRUE(events->array.empty());
  const JsonValue* other = root.Get("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Get("dropped_events"), nullptr);
  EXPECT_EQ(other->Get("dropped_events")->number, 0.0);
}

TEST(ObsJsonTest, HostileEventNamesRoundTripThroughEscaping) {
  const std::vector<std::string> evil_names = {
      "quote\"and\\backslash",
      "newline\nand\ttab",
      "control\x01\x1f chars",
      "cr\rlf\n",
      "plain",
  };
  Tracer::Get().Start();
  for (const std::string& name : evil_names) {
    Tracer::Get().Record(obs::MakeInstant(Tracer::Intern(name), NowNanos()));
  }
  TraceDump dump = Tracer::Get().Stop();
  ASSERT_EQ(dump.total_events(), evil_names.size());

  JsonValue root;
  ASSERT_TRUE(JsonParser(ChromeTraceJson(dump)).Parse(&root));
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> parsed_names;
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* name = event.Get("name");
    ASSERT_NE(name, nullptr);
    if (event.Get("ph") != nullptr && event.Get("ph")->str == "i") {
      parsed_names.insert(name->str);
    }
  }
  // Every hostile name decodes back to exactly the original bytes.
  EXPECT_EQ(parsed_names,
            std::set<std::string>(evil_names.begin(), evil_names.end()));
}

TEST(ObsJsonTest, TracedRunExportsParseableEventsFromAllThreads) {
  Graph graph = SocialNetwork({.num_vertices = 1024, .avg_degree = 8.0,
                               .seed = 3});
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  std::unique_ptr<SingleSourceBfsBase> bfs =
      MakeSmsPbfs(graph, SmsVariant::kBit, &pool);
  Tracer::Get().Start();
  std::vector<Level> levels(graph.num_vertices());
  bfs->Run(0, BfsOptions{}, levels.data());
  TraceDump dump = Tracer::Get().Stop();

  JsonValue root;
  ASSERT_TRUE(JsonParser(ChromeTraceJson(dump)).Parse(&root));
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  // One thread_name metadata record per dumped thread, and every dumped
  // event present (spans "X" carry a dur; every event carries args).
  size_t metadata = 0;
  std::set<double> span_tids;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      ++metadata;
      continue;
    }
    ASSERT_NE(event.Get("args"), nullptr);
    ASSERT_NE(event.Get("ts"), nullptr);
    if (ph->str == "X") {
      ASSERT_NE(event.Get("dur"), nullptr);
      EXPECT_GE(event.Get("dur")->number, 0.0);
      span_tids.insert(event.Get("tid")->number);
    }
  }
  EXPECT_EQ(metadata, dump.threads.size());
  EXPECT_EQ(events->array.size(), dump.total_events() + dump.threads.size());
  // Spans from at least two distinct threads (coordinator + workers).
  EXPECT_GE(span_tids.size(), 2u);
}

// ---------------------------------------------------------------------
// Metrics aggregation.
// ---------------------------------------------------------------------

TEST(ObsMetricsTest, AggregatesCountsDurationsAndArgTotals) {
  Tracer::Get().Start();
  const int64_t base = NowNanos();
  for (int i = 1; i <= 3; ++i) {
    TraceEvent span = obs::MakeSpan("work", base, base + i * 1000);
    span.AddArg("items", static_cast<uint64_t>(10 * i));
    Tracer::Get().Record(span);
  }
  Tracer::Get().Record(obs::MakeInstant("mark", base));
  Tracer::Get().Record(obs::MakeInstant("mark", base + 5));
  TraceDump dump = Tracer::Get().Stop();

  MetricsSnapshot snapshot = AggregateMetrics(dump);
  EXPECT_EQ(snapshot.total_events, 5u);
  EXPECT_EQ(snapshot.dropped_events, 0u);
  ASSERT_EQ(snapshot.entries.size(), 2u);
  // Entries are sorted by name.
  EXPECT_EQ(snapshot.entries[0].name, "mark");
  EXPECT_EQ(snapshot.entries[1].name, "work");

  const MetricsSnapshot::Entry* work = snapshot.Find("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->spans, 3u);
  EXPECT_EQ(work->instants, 0u);
  EXPECT_EQ(work->duration_us.count(), 3u);
  EXPECT_DOUBLE_EQ(work->duration_us.mean(), 2.0);  // 1us, 2us, 3us
  EXPECT_EQ(work->duration_hist_us.count(), 3u);
  EXPECT_EQ(work->arg_totals.at("items"), 60u);

  const MetricsSnapshot::Entry* mark = snapshot.Find("mark");
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->instants, 2u);
  EXPECT_EQ(mark->spans, 0u);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
  EXPECT_FALSE(snapshot.ToString().empty());
}

TEST(ObsMetricsTest, MergesAcrossWorkerThreads) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  Tracer::Get().Start();
  pool.ParallelFor(1 << 14, 64, [](int, uint64_t, uint64_t) {});
  pool.ParallelFor(1 << 14, 64, [](int, uint64_t, uint64_t) {});
  TraceDump dump = Tracer::Get().Stop();

  MetricsSnapshot snapshot = AggregateMetrics(dump);
  EXPECT_EQ(snapshot.total_events, dump.total_events());
  const MetricsSnapshot::Entry* loops = snapshot.Find("sched.worker_loop");
  ASSERT_NE(loops, nullptr);
  // 2 loops x 4 workers, merged from 4 per-thread partial aggregates.
  EXPECT_EQ(loops->spans, 8u);
  EXPECT_EQ(loops->duration_hist_us.count(), 8u);
  // All tasks accounted across the merge.
  const uint64_t tasks_per_loop = (uint64_t{1} << 14) / 64;
  EXPECT_EQ(loops->arg_totals.at("local") + loops->arg_totals.at("stolen"),
            2 * tasks_per_loop);
}

// Derived hardware metrics come straight from the summed args, and are
// absent (not zero, not NaN) when the counters never made it into the
// trace.
TEST(ObsMetricsTest, DerivedHardwareMetricsFollowArgTotals) {
  Tracer::Get().Start();
  const int64_t now = NowNanos();
  TraceEvent with_counters = obs::MakeSpan("hot.level", now, now + 1000);
  with_counters.AddArg("cycles", 2000);
  with_counters.AddArg("instructions", 1000);
  with_counters.AddArg("llc_loads", 500);
  with_counters.AddArg("llc_misses", 50);
  with_counters.AddArg("edges_scanned", 800);
  Tracer::Get().Record(with_counters);
  Tracer::Get().Record(obs::MakeSpan("plain.level", now, now + 1000));
  TraceDump dump = Tracer::Get().Stop();

  MetricsSnapshot snapshot = AggregateMetrics(dump);
  const MetricsSnapshot::Entry* hot = snapshot.Find("hot.level");
  ASSERT_NE(hot, nullptr);
  ASSERT_TRUE(hot->Ipc().has_value());
  EXPECT_DOUBLE_EQ(*hot->Ipc(), 0.5);
  ASSERT_TRUE(hot->LlcMissRate().has_value());
  EXPECT_DOUBLE_EQ(*hot->LlcMissRate(), 0.1);
  ASSERT_TRUE(hot->LlcBytesPerEdge().has_value());
  EXPECT_DOUBLE_EQ(*hot->LlcBytesPerEdge(), 50.0 * kCacheLineSize / 800.0);

  const MetricsSnapshot::Entry* plain = snapshot.Find("plain.level");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->Ipc().has_value());
  EXPECT_FALSE(plain->LlcMissRate().has_value());
  EXPECT_FALSE(plain->LlcBytesPerEdge().has_value());
  // The derived block shows up in ToString only where it exists.
  EXPECT_NE(snapshot.ToString().find("ipc="), std::string::npos);
}

#endif  // PBFS_TRACING

}  // namespace
}  // namespace pbfs
