// RollingWindow invariants (src/obs/live/rolling_window.h).
//
// The estimator's contract has three load-bearing pieces: its quantiles
// must track the exact sorted quantiles of whatever is inside the
// window (within the log-bucket error bound it inherits from
// util/stats.h), samples must expire exactly at the subwindow
// granularity as injected time advances, and concurrent writers must
// never lose or double-count a sample. Each is pinned against ground
// truth computed independently with plain sorted vectors.

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#ifdef PBFS_TRACING
#include "obs/live/rolling_window.h"
#include "util/rng.h"
#endif

namespace pbfs {
namespace {

#ifndef PBFS_TRACING

TEST(RollingWindowTest, SkippedWithoutTracing) {
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
}

#else  // PBFS_TRACING

using obs::RollingWindow;

constexpr int64_t kSecond = 1000 * 1000 * 1000;

RollingWindow::Options SmallWindow() {
  RollingWindow::Options options;
  options.window_ns = 10 * kSecond;
  options.num_subwindows = 5;
  return options;
}

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(q * (values.size() - 1));
  return values[rank];
}

// Log buckets with growth g bound the relative error of any in-bucket
// estimate by a factor of g; interpolation usually does much better,
// but only the bound is contractual.
void ExpectWithinBucketError(double estimate, double exact, double growth) {
  EXPECT_GE(estimate, exact / growth);
  EXPECT_LE(estimate, exact * growth);
}

TEST(RollingWindowTest, QuantilesTrackExactSortedQuantiles) {
  Rng rng(42);
  for (int stream = 0; stream < 3; ++stream) {
    RollingWindow window(SmallWindow());
    const double growth = window.options().hist_growth;
    std::vector<double> values;
    // Subwindow-aligned base (2 s subwindows): offsets 0..9 s then all
    // fall inside the window ending at base + 9 s regardless of stream.
    const int64_t base = (100 + 2 * stream) * kSecond;
    for (int i = 0; i < 4000; ++i) {
      // Mixed-scale stream: a uniform body with a long multiplicative
      // tail, the shape of a latency distribution.
      double v = 0.1 + 10.0 * rng.NextDouble();
      if (rng.NextBounded(10) == 0) v *= 50.0;
      values.push_back(v);
      // Spread the stream across the window but keep it all live.
      window.Add(v, base + (i % 9) * kSecond);
    }
    const int64_t now = base + 9 * kSecond;
    ASSERT_EQ(window.Count(now), values.size());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      ExpectWithinBucketError(window.Quantile(q, now),
                              ExactQuantile(values, q), growth);
    }
    const RollingWindow::Stats stats = window.WindowStats(now);
    EXPECT_EQ(stats.count, values.size());
    double exact_sum = 0;
    for (double v : values) exact_sum += v;
    EXPECT_NEAR(stats.sum, exact_sum, exact_sum * 1e-9);
    EXPECT_DOUBLE_EQ(stats.min, *std::min_element(values.begin(),
                                                  values.end()));
    EXPECT_DOUBLE_EQ(stats.max, *std::max_element(values.begin(),
                                                  values.end()));
    ExpectWithinBucketError(stats.p50, ExactQuantile(values, 0.5), growth);
    ExpectWithinBucketError(stats.p99, ExactQuantile(values, 0.99), growth);
  }
}

TEST(RollingWindowTest, SubwindowsExpireAsTimeAdvances) {
  RollingWindow window(SmallWindow());  // 10 s window, 2 s subwindows
  const int64_t base = 100 * kSecond;
  // 10 samples into each of the 5 live subwindows, distinguishable by
  // value.
  for (int sub = 0; sub < 5; ++sub) {
    for (int i = 0; i < 10; ++i) {
      window.Add(1.0 + sub, base + sub * 2 * kSecond);
    }
  }
  int64_t now = base + 9 * kSecond;  // inside the last written subwindow
  EXPECT_EQ(window.Count(now), 50u);
  EXPECT_DOUBLE_EQ(window.WindowStats(now).min, 1.0);

  // Each 2 s step ages one subwindow out, oldest first.
  for (int expired = 1; expired <= 4; ++expired) {
    now += 2 * kSecond;
    EXPECT_EQ(window.Count(now), 50u - 10u * expired);
    EXPECT_DOUBLE_EQ(window.WindowStats(now).min, 1.0 + expired);
  }
  // Past the full window: empty, and stats degrade to zeros.
  now += 2 * kSecond;
  EXPECT_EQ(window.Count(now), 0u);
  const RollingWindow::Stats empty = window.WindowStats(now);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0.0);

  // A new sample after the gap starts a fresh window; the lazily-reset
  // slot must not resurrect the expired epoch's contents.
  window.Add(7.0, now);
  EXPECT_EQ(window.Count(now), 1u);
  EXPECT_DOUBLE_EQ(window.WindowStats(now).max, 7.0);
}

TEST(RollingWindowTest, SlotReuseDropsOnlyTheOverwrittenEpoch) {
  RollingWindow window(SmallWindow());
  const int64_t base = 100 * kSecond;
  window.Add(1.0, base);
  // One full ring later the same slot is reused; the old epoch's
  // sample must vanish while younger subwindows survive.
  window.Add(2.0, base + 4 * kSecond);
  window.Add(3.0, base + 10 * kSecond);  // same slot as the 1.0 sample
  const int64_t now = base + 10 * kSecond;
  EXPECT_EQ(window.Count(now), 2u);
  EXPECT_DOUBLE_EQ(window.WindowStats(now).min, 2.0);
  EXPECT_DOUBLE_EQ(window.WindowStats(now).max, 3.0);
}

TEST(RollingWindowTest, ConcurrentWritersLoseNothing) {
  RollingWindow window(SmallWindow());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  const int64_t base = 100 * kSecond;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&window, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        // All inside the live window; values tag the writer.
        window.Add(t + 1.0, base + (i % 9) * kSecond);
        (void)rng;
      }
    });
  }
  // Concurrent reads must see internally-consistent merges (count and
  // sum move together), never crash or tear.
  uint64_t last_count = 0;
  for (int reads = 0; reads < 50; ++reads) {
    const RollingWindow::Stats stats = window.WindowStats(base + 9 * kSecond);
    EXPECT_GE(stats.count, last_count);
    last_count = stats.count;
    if (stats.count > 0) {
      EXPECT_GE(stats.min, 1.0);
      EXPECT_LE(stats.max, static_cast<double>(kThreads));
    }
  }
  for (std::thread& t : writers) t.join();
  const RollingWindow::Stats final_stats =
      window.WindowStats(base + 9 * kSecond);
  EXPECT_EQ(final_stats.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1.0) * kPerThread;
  EXPECT_NEAR(final_stats.sum, expected_sum, expected_sum * 1e-9);
}

#endif  // PBFS_TRACING

}  // namespace
}  // namespace pbfs
