#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/aligned_buffer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace pbfs {
namespace {

TEST(AlignedBufferTest, PageAlignedAllocation) {
  AlignedBuffer<uint8_t> buf(100);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kPageSize, 0u);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf.size_bytes(), 100u);
}

TEST(AlignedBufferTest, FillZeroAndIndexing) {
  AlignedBuffer<uint32_t> buf(1000);
  buf.FillZero();
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
  buf[7] = 42;
  EXPECT_EQ(buf[7], 42u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a.FillZero();
  a[3] = 5;
  int* data = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b[3], 5);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  buf.Reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBufferTest, CustomAlignment) {
  AlignedBuffer<uint8_t> buf(10, kCacheLineSize);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, KnownAvalanche) {
  // Nearby inputs should map to very different outputs.
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(0) >> 32, SplitMix64(1) >> 32);
}

TEST(StatsTest, SummarizeBasics) {
  SampleSummary s = Summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
}

TEST(StatsTest, SummarizeEvenCountMedian) {
  SampleSummary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(StatsTest, SummarizeSingleElement) {
  SampleSummary s = Summarize({5.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(StatsTest, SkewRatio) {
  EXPECT_DOUBLE_EQ(SkewRatio({2.0, 4.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(SkewRatio({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(SkewRatio({}), 1.0);
  // Zero / negative entries (idle workers) are ignored.
  EXPECT_DOUBLE_EQ(SkewRatio({0.0, 3.0, 6.0}), 2.0);
  EXPECT_DOUBLE_EQ(SkewRatio({0.0, 0.0}), 1.0);
}

TEST(TimerTest, MonotonicElapsed) {
  Timer t;
  int64_t a = t.ElapsedNanos();
  int64_t b = t.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  t.Restart();
  EXPECT_GE(t.ElapsedNanos(), 0);
}

TEST(FlagsTest, ParsesAllKinds) {
  int64_t scale = 16;
  double alpha = 15.0;
  bool verbose = false;
  std::string name = "default";
  FlagParser parser("test");
  parser.AddInt64("scale", &scale, "graph scale");
  parser.AddDouble("alpha", &alpha, "heuristic alpha");
  parser.AddBool("verbose", &verbose, "verbosity");
  parser.AddString("name", &name, "a name");

  const char* argv[] = {"prog",           "--scale=20",  "--alpha", "7.5",
                        "--verbose",      "--name=kron"};
  parser.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(scale, 20);
  EXPECT_DOUBLE_EQ(alpha, 7.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "kron");
}

TEST(FlagsTest, NegatedBool) {
  bool pin = true;
  FlagParser parser("test");
  parser.AddBool("pin", &pin, "pinning");
  const char* argv[] = {"prog", "--nopin"};
  parser.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(pin);
}

TEST(FlagsTest, BoolExplicitFalse) {
  bool pin = true;
  FlagParser parser("test");
  parser.AddBool("pin", &pin, "pinning");
  const char* argv[] = {"prog", "--pin=false"};
  parser.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(pin);
}

}  // namespace
}  // namespace pbfs
