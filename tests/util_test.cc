#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/aligned_buffer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace pbfs {
namespace {

TEST(AlignedBufferTest, PageAlignedAllocation) {
  AlignedBuffer<uint8_t> buf(100);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kPageSize, 0u);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf.size_bytes(), 100u);
}

TEST(AlignedBufferTest, FillZeroAndIndexing) {
  AlignedBuffer<uint32_t> buf(1000);
  buf.FillZero();
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
  buf[7] = 42;
  EXPECT_EQ(buf[7], 42u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a.FillZero();
  a[3] = 5;
  int* data = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b[3], 5);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  buf.Reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBufferTest, CustomAlignment) {
  AlignedBuffer<uint8_t> buf(10, kCacheLineSize);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64Test, KnownAvalanche) {
  // Nearby inputs should map to very different outputs.
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(SplitMix64(0) >> 32, SplitMix64(1) >> 32);
}

TEST(StatsTest, SummarizeBasics) {
  SampleSummary s = Summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
}

TEST(StatsTest, SummarizeEvenCountMedian) {
  SampleSummary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(StatsTest, SummarizeSingleElement) {
  SampleSummary s = Summarize({5.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(StatsTest, SkewRatio) {
  EXPECT_DOUBLE_EQ(SkewRatio({2.0, 4.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(SkewRatio({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(SkewRatio({}), 1.0);
  // Zero / negative entries (idle workers) are ignored.
  EXPECT_DOUBLE_EQ(SkewRatio({0.0, 3.0, 6.0}), 2.0);
  EXPECT_DOUBLE_EQ(SkewRatio({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(SkewRatio({-4.0, 3.0, 6.0}), 2.0);
  EXPECT_DOUBLE_EQ(SkewRatio({-1.0, -2.0, 0.0}), 1.0);
}

TEST(StatsTest, StreamingStatsMerge) {
  // Empty + empty stays empty.
  StreamingStats a;
  StreamingStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);

  // Empty + nonempty adopts the nonempty side, in either order.
  StreamingStats samples;
  samples.Add(2.0);
  samples.Add(6.0);
  a.Merge(samples);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  StreamingStats b = samples;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.sum(), 8.0);

  // Merging equals Add()ing every sample into one accumulator, and is
  // commutative (the obs metrics reduction folds per-worker partials in
  // whatever order threads appear in the dump).
  StreamingStats left;
  for (double v : {1.0, -3.0, 7.0}) left.Add(v);
  StreamingStats right;
  for (double v : {4.0, 0.5}) right.Add(v);
  StreamingStats lr = left;
  lr.Merge(right);
  StreamingStats rl = right;
  rl.Merge(left);
  StreamingStats direct;
  for (double v : {1.0, -3.0, 7.0, 4.0, 0.5}) direct.Add(v);
  for (const StreamingStats& merged : {lr, rl}) {
    EXPECT_EQ(merged.count(), direct.count());
    EXPECT_DOUBLE_EQ(merged.sum(), direct.sum());
    EXPECT_DOUBLE_EQ(merged.min(), direct.min());
    EXPECT_DOUBLE_EQ(merged.max(), direct.max());
    EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
  }
}

TEST(StatsTest, HistogramBucketBoundaries) {
  // Buckets: [0,1), [1,2), [2,4), [4,8), [8,16), [16,inf).
  Histogram h(/*min_bound=*/1.0, /*growth=*/2.0, /*num_log_buckets=*/4);
  EXPECT_EQ(h.num_buckets(), 6);
  EXPECT_EQ(h.BucketOf(0.5), 0);
  EXPECT_EQ(h.BucketOf(0.0), 0);
  EXPECT_EQ(h.BucketOf(-3.0), 0);
  EXPECT_EQ(h.BucketOf(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(h.BucketOf(1.0), 1);   // lower bounds are inclusive
  EXPECT_EQ(h.BucketOf(2.0), 2);
  EXPECT_EQ(h.BucketOf(3.999), 2);
  EXPECT_EQ(h.BucketOf(4.0), 3);
  EXPECT_EQ(h.BucketOf(16.0), 5);  // overflow bucket
  EXPECT_EQ(h.BucketOf(1e12), 5);
  // BucketOf agrees exactly with the [BucketLower, BucketUpper) ranges,
  // including at the float-sensitive boundaries.
  for (int b = 1; b < h.num_buckets(); ++b) {
    EXPECT_EQ(h.BucketOf(h.BucketLower(b)), b) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(h.BucketLower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketUpper(1), 2.0);
  EXPECT_TRUE(std::isinf(h.BucketUpper(h.num_buckets() - 1)));
}

TEST(StatsTest, HistogramQuantiles) {
  Histogram single(1.0, 2.0, 8);
  single.Add(5.0);
  // One sample: every quantile is clamped to it.
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 5.0);

  Histogram empty(1.0, 2.0, 8);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram h(1.0, 2.0, 8);
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  // Estimates stay within the sampled range and are monotone in q.
  double prev = h.Quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    EXPECT_GE(value, h.min()) << "q=" << q;
    EXPECT_LE(value, h.max()) << "q=" << q;
    prev = value;
  }
  // The interpolated median lands in the bucket holding rank 50
  // ([32,64) for 1..100), nowhere wild.
  EXPECT_GE(h.Quantile(0.5), 32.0);
  EXPECT_LT(h.Quantile(0.5), 64.0);
}

TEST(StatsTest, HistogramMerge) {
  Histogram a(1.0, 2.0, 6);
  Histogram b(1.0, 2.0, 6);
  for (double v : {0.5, 1.5, 3.0}) a.Add(v);
  for (double v : {3.5, 100.0}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_EQ(a.bucket_count(a.BucketOf(3.0)), 2u);  // 3.0 and 3.5 share [2,4)
  EXPECT_EQ(a.bucket_count(0), 1u);
  // Merging an empty histogram changes nothing.
  a.Merge(Histogram(1.0, 2.0, 6));
  EXPECT_EQ(a.count(), 5u);
}

TEST(TimerTest, MonotonicElapsed) {
  Timer t;
  int64_t a = t.ElapsedNanos();
  int64_t b = t.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  t.Restart();
  EXPECT_GE(t.ElapsedNanos(), 0);
}

TEST(FlagsTest, ParsesAllKinds) {
  int64_t scale = 16;
  double alpha = 15.0;
  bool verbose = false;
  std::string name = "default";
  FlagParser parser("test");
  parser.AddInt64("scale", &scale, "graph scale");
  parser.AddDouble("alpha", &alpha, "heuristic alpha");
  parser.AddBool("verbose", &verbose, "verbosity");
  parser.AddString("name", &name, "a name");

  const char* argv[] = {"prog",           "--scale=20",  "--alpha", "7.5",
                        "--verbose",      "--name=kron"};
  parser.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(scale, 20);
  EXPECT_DOUBLE_EQ(alpha, 7.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "kron");
}

TEST(FlagsTest, NegatedBool) {
  bool pin = true;
  FlagParser parser("test");
  parser.AddBool("pin", &pin, "pinning");
  const char* argv[] = {"prog", "--nopin"};
  parser.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(pin);
}

TEST(FlagsTest, BoolExplicitFalse) {
  bool pin = true;
  FlagParser parser("test");
  parser.AddBool("pin", &pin, "pinning");
  const char* argv[] = {"prog", "--pin=false"};
  parser.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(pin);
}

}  // namespace
}  // namespace pbfs
