// Bounded-depth traversal (BfsOptions::max_level): every kernel must
// visit exactly the vertices within the radius and report levels capped
// at the bound.

#include <gtest/gtest.h>

#include "bfs/beamer.h"
#include "bfs/multi_source.h"
#include "bfs/single_source.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "test_util.h"

namespace pbfs {
namespace {

// Truncates a full-level reference to radius `max`.
std::vector<Level> Bounded(const std::vector<Level>& full, Level max) {
  std::vector<Level> bounded(full.size(), kLevelUnreached);
  for (size_t v = 0; v < full.size(); ++v) {
    if (full[v] != kLevelUnreached && full[v] <= max) bounded[v] = full[v];
  }
  return bounded;
}

uint64_t CountReached(const std::vector<Level>& levels) {
  uint64_t count = 0;
  for (Level l : levels) {
    if (l != kLevelUnreached) ++count;
  }
  return count;
}

class BoundedBfsTest : public ::testing::TestWithParam<Level> {};

TEST_P(BoundedBfsTest, SingleSourceKernelsRespectRadius) {
  const Level radius = GetParam();
  BfsOptions options;
  options.max_level = radius;

  Graph graphs[] = {Path(300), Grid(20, 20),
                    SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                                   .seed = 31})};
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  for (const Graph& g : graphs) {
    const Vertex source = g.num_vertices() / 2;
    std::vector<Level> expected =
        Bounded(testing_util::ReferenceLevels(g, source), radius);
    std::vector<Level> got(g.num_vertices());

    for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte,
                               SmsVariant::kQueue}) {
      auto bfs = MakeSmsPbfs(g, variant, &pool);
      BfsResult r = bfs->Run(source, options, got.data());
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << SmsVariantName(variant) << " radius " << radius;
      EXPECT_EQ(r.vertices_visited, CountReached(expected))
          << SmsVariantName(variant);
      EXPECT_LE(r.iterations, static_cast<int>(radius));
    }
    for (BeamerVariant variant : {BeamerVariant::kSparse,
                                  BeamerVariant::kDense,
                                  BeamerVariant::kGapbs}) {
      BfsResult r = BeamerBfs(g, source, variant, options, got.data());
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << BeamerVariantName(variant) << " radius " << radius;
      EXPECT_EQ(r.vertices_visited, CountReached(expected));
      EXPECT_LE(r.iterations, static_cast<int>(radius));
    }
  }
}

TEST_P(BoundedBfsTest, MultiSourceKernelsRespectRadius) {
  const Level radius = GetParam();
  BfsOptions options;
  options.max_level = radius;

  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 8.0,
                           .seed = 31});
  const Vertex n = g.num_vertices();
  std::vector<Vertex> sources = PickSources(g, 5, 3);
  SerialExecutor serial;

  auto check = [&](MultiSourceBfsBase* bfs, const char* name) {
    std::vector<Level> levels(sources.size() * n);
    bfs->Run(sources, options, levels.data());
    for (size_t i = 0; i < sources.size(); ++i) {
      std::vector<Level> expected =
          Bounded(testing_util::ReferenceLevels(g, sources[i]), radius);
      std::vector<Level> got(levels.begin() + i * n,
                             levels.begin() + (i + 1) * n);
      EXPECT_EQ(testing_util::FirstLevelMismatch(expected, got), -1)
          << name << " source index " << i << " radius " << radius;
    }
  };
  auto mspbfs = MakeMsPbfs(g, 64, &serial);
  check(mspbfs.get(), "ms-pbfs");
  auto msbfs = MakeMsBfs(g, 64);
  check(msbfs.get(), "ms-bfs");
  auto jfq = MakeJfqMsBfs(g, 64);
  check(jfq.get(), "jfq");
}

INSTANTIATE_TEST_SUITE_P(Radii, BoundedBfsTest,
                         ::testing::Values<Level>(0, 1, 2, 5),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return "radius" + std::to_string(info.param);
                         });

TEST(BoundedBfsTest, ZeroRadiusVisitsOnlySource) {
  Graph g = Star(50);
  SerialExecutor serial;
  BfsOptions options;
  options.max_level = 0;
  auto bfs = MakeSmsPbfs(g, SmsVariant::kBit, &serial);
  std::vector<Level> levels(g.num_vertices());
  BfsResult r = bfs->Run(0, options, levels.data());
  EXPECT_EQ(r.vertices_visited, 1u);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], kLevelUnreached);
}

}  // namespace
}  // namespace pbfs
