// Property-based checks: structural invariants of BFS results and the
// per-iteration instrumentation, swept over randomized graphs.

#include <numeric>

#include <gtest/gtest.h>

#include "bfs/multi_source.h"
#include "bfs/sequential.h"
#include "bfs/single_source.h"
#include "bfs/validate.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "test_util.h"

namespace pbfs {
namespace {

class RandomGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphProperty, AllVariantsProduceValidLevelLabelings) {
  const uint64_t seed = GetParam();
  Graph g = ErdosRenyi(1024 + seed * 97, 2048 + seed * 331, seed);
  ComponentInfo components = ComputeComponents(g);
  std::vector<Vertex> sources = PickSources(g, 3, seed);

  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  std::string error;

  for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
    std::unique_ptr<SingleSourceBfsBase> bfs =
        MakeSmsPbfs(g, variant, &pool);
    for (Vertex s : sources) {
      std::vector<Level> levels(g.num_vertices());
      bfs->Run(s, BfsOptions{}, levels.data());
      EXPECT_TRUE(ValidateLevels(g, s, levels.data(), &components, &error))
          << SmsVariantName(variant) << " seed=" << seed << ": " << error;
    }
  }

  std::unique_ptr<MultiSourceBfsBase> ms = MakeMsPbfs(g, 64, &pool);
  std::vector<Level> levels(sources.size() * g.num_vertices());
  ms->Run(sources, BfsOptions{}, levels.data());
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_TRUE(ValidateLevels(g, sources[i],
                               levels.data() + i * g.num_vertices(),
                               &components, &error))
        << "ms-pbfs seed=" << seed << " i=" << i << ": " << error;
  }
}

TEST_P(RandomGraphProperty, VisitCountsMatchComponentSizes) {
  const uint64_t seed = GetParam();
  Graph g = ErdosRenyi(512 + seed * 13, 700 + seed * 29, seed ^ 0xabc);
  ComponentInfo components = ComputeComponents(g);
  std::vector<Vertex> sources = PickSources(g, 8, seed);

  SerialExecutor serial;
  std::unique_ptr<MultiSourceBfsBase> ms = MakeMsPbfs(g, 64, &serial);
  MsBfsResult r = ms->Run(sources, BfsOptions{}, nullptr);
  uint64_t expected = 0;
  for (Vertex s : sources) {
    expected += components.vertex_count[components.component_of[s]];
  }
  EXPECT_EQ(r.total_visits, expected);
}

TEST_P(RandomGraphProperty, IterationCountMatchesEccentricity) {
  const uint64_t seed = GetParam();
  Graph g = ErdosRenyi(256, 300, seed ^ 0x5a5a);
  Vertex source = PickSources(g, 1, seed)[0];
  std::vector<Level> ref = testing_util::ReferenceLevels(g, source);
  Level max_level = 0;
  for (Level l : ref) {
    if (l != kLevelUnreached) max_level = std::max(max_level, l);
  }

  SerialExecutor serial;
  for (SmsVariant variant : {SmsVariant::kBit, SmsVariant::kByte, SmsVariant::kQueue}) {
    std::unique_ptr<SingleSourceBfsBase> bfs =
        MakeSmsPbfs(g, variant, &serial);
    BfsResult r = bfs->Run(source, BfsOptions{}, nullptr);
    EXPECT_EQ(r.iterations, max_level) << SmsVariantName(variant);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Range<uint64_t>(0, 8));

TEST(InstrumentationTest, StatsCoverEveryIteration) {
  Graph g = Kronecker({.scale = 10, .edge_factor = 8, .seed = 111});
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  TraversalStats stats;
  BfsOptions options;
  options.stats = &stats;

  std::unique_ptr<SingleSourceBfsBase> bfs =
      MakeSmsPbfs(g, SmsVariant::kByte, &pool);
  Vertex source = PickSources(g, 1, 1)[0];
  BfsResult r = bfs->Run(source, options, nullptr);

  // The final, empty iteration is also recorded.
  ASSERT_EQ(stats.iterations().size(),
            static_cast<size_t>(r.iterations) + 1);
  uint64_t discovered = 0;
  uint64_t updates = 0;
  for (const TraversalStats::Iteration& iter : stats.iterations()) {
    ASSERT_EQ(iter.neighbors_visited.size(), 3u);
    ASSERT_EQ(iter.states_updated.size(), 3u);
    ASSERT_EQ(iter.busy_ms.size(), 3u);
    EXPECT_GE(iter.runtime_ms, 0.0);
    for (double ms : iter.busy_ms) EXPECT_GE(ms, 0.0);
    discovered += iter.vertices_discovered;
    for (uint64_t u : iter.states_updated) updates += u;
  }
  EXPECT_EQ(discovered, r.vertices_visited - 1);  // source not counted
  EXPECT_EQ(updates, discovered);
}

TEST(InstrumentationTest, TopDownNeighborCountsMatchFrontierDegrees) {
  // Pure top-down: the neighbors visited in iteration d equal the degree
  // sum of the level-(d-1) frontier.
  Graph g = Grid(12, 12);
  SerialExecutor serial;
  TraversalStats stats;
  BfsOptions options;
  options.stats = &stats;
  options.enable_bottom_up = false;

  std::unique_ptr<SingleSourceBfsBase> bfs =
      MakeSmsPbfs(g, SmsVariant::kBit, &serial);
  bfs->Run(0, options, nullptr);
  std::vector<Level> ref = testing_util::ReferenceLevels(g, 0);

  for (size_t d = 0; d < stats.iterations().size(); ++d) {
    uint64_t frontier_degree = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (ref[v] == static_cast<Level>(d)) frontier_degree += g.Degree(v);
    }
    uint64_t visited = std::accumulate(
        stats.iterations()[d].neighbors_visited.begin(),
        stats.iterations()[d].neighbors_visited.end(), uint64_t{0});
    EXPECT_EQ(visited, frontier_degree) << "iteration " << d;
    EXPECT_EQ(stats.iterations()[d].direction, Direction::kTopDown);
  }
}

TEST(InstrumentationTest, MultiSourceStats) {
  Graph g = SocialNetwork({.num_vertices = 2048, .avg_degree = 10.0,
                           .seed = 7});
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  TraversalStats stats;
  BfsOptions options;
  options.stats = &stats;

  std::unique_ptr<MultiSourceBfsBase> ms = MakeMsPbfs(g, 64, &pool);
  std::vector<Vertex> sources = PickSources(g, 64, 3);
  MsBfsResult r = ms->Run(sources, options, nullptr);
  ASSERT_GE(stats.iterations().size(), 1u);
  ASSERT_EQ(stats.iterations().size(),
            static_cast<size_t>(r.iterations) + 1);
  uint64_t updated = 0;
  for (const TraversalStats::Iteration& iter : stats.iterations()) {
    for (uint64_t u : iter.states_updated) updated += u;
  }
  EXPECT_GT(updated, 0u);
}

TEST(InstrumentationTest, ResetClearsHistory) {
  TraversalStats stats;
  stats.Reset(2);
  stats.Accumulate(0, 10, 5, 100);
  stats.Accumulate(1, 20, 7, 200);
  stats.FinishIteration(Direction::kTopDown, 1.5, 12);
  ASSERT_EQ(stats.iterations().size(), 1u);
  EXPECT_EQ(stats.iterations()[0].neighbors_visited[0], 10u);
  EXPECT_EQ(stats.iterations()[0].neighbors_visited[1], 20u);
  EXPECT_EQ(stats.iterations()[0].vertices_discovered, 12u);

  stats.Reset(2);
  EXPECT_TRUE(stats.iterations().empty());
}

TEST(SequentialBfsTest, KnownDistancesOnPath) {
  Graph g = Path(6);
  std::vector<Level> levels(6);
  BfsResult r = SequentialBfs(g, 2, levels.data());
  EXPECT_EQ(levels, (std::vector<Level>{2, 1, 0, 1, 2, 3}));
  EXPECT_EQ(r.vertices_visited, 6u);
  EXPECT_EQ(r.iterations, 3);
}

TEST(SequentialBfsTest, DisconnectedStaysUnreached) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}});
  std::vector<Level> levels(4);
  BfsResult r = SequentialBfs(g, 0, levels.data());
  EXPECT_EQ(levels[2], kLevelUnreached);
  EXPECT_EQ(levels[3], kLevelUnreached);
  EXPECT_EQ(r.vertices_visited, 2u);
}

}  // namespace
}  // namespace pbfs
