// Concurrent query-engine suite: randomized concurrent submission
// diffed against the sequential oracle (reusing the differential
// corpus and PBFS_DIFF_SEED reproduction banner), width overflow,
// degenerate queries, deadline/cancellation, counters, and a stress
// pass under the steal_heavy / starvation StealPolicy schedules.
//
// Labeled engine + differential in CMake so the TSan and ASan+UBSan CI
// legs run it; see docs/engine.md and docs/testing.md.

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/khop.h"
#include "bfs/sequential.h"
#include "differential/diff_util.h"
#include "engine/query_engine.h"
#include "graph/generators.h"
#include "sched/steal_policy.h"
#include "sched/worker_pool.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"
#include "util/timer.h"

#ifdef PBFS_TRACING
#include "obs/live/metrics_registry.h"
#include "obs/trace.h"
#endif

namespace pbfs {
namespace {

using diff::CorpusGraph;
using diff::MakeCorpus;
using diff::ReproNote;

// Submit one kLevels query, wait, and diff the result byte-for-byte
// against a fresh SequentialBfs run.
void SubmitAndCheckLevels(QueryEngine* engine, const Graph& graph,
                          Vertex source, const std::string& note) {
  const Vertex n = graph.num_vertices();
  Query query;
  query.source = source;
  QueryEngine::Submission sub = engine->Submit(std::move(query));
  QueryResult result = sub.result.get();
  ASSERT_EQ(result.status, QueryStatus::kOk) << note;
  ASSERT_EQ(result.levels.size(), static_cast<size_t>(n)) << note;
  std::vector<Level> expected(n);
  SequentialBfs(graph, source, expected.data());
  // Byte-identical, not just "plausible": first divergence is reported.
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(result.levels[v], expected[v])
        << "source=" << source << " vertex=" << v << " " << note;
  }
  uint64_t reached = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (expected[v] != kLevelUnreached) ++reached;
  }
  EXPECT_EQ(result.vertices_reached, reached) << note;
}

void ConcurrentOracleTrial(QueryEngine* engine, const Graph& graph,
                           int num_clients, int queries_per_client,
                           uint64_t seed, const std::string& note) {
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(SplitMix64(seed + static_cast<uint64_t>(c) * 0x9e37ull));
      for (int q = 0; q < queries_per_client; ++q) {
        SubmitAndCheckLevels(
            engine, graph,
            static_cast<Vertex>(rng.NextBounded(graph.num_vertices())), note);
      }
    });
  }
  for (std::thread& t : clients) t.join();
}

TEST(QueryEngineDifferentialTest, ConcurrentSubmissionMatchesOracle) {
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  for (int trial = 0; trial < diff::NumTrials(); ++trial) {
    const uint64_t seed = diff::TrialSeed(trial);
    SCOPED_TRACE(ReproNote(seed));
    for (const CorpusGraph& gc : MakeCorpus(seed)) {
      if (gc.graph.num_vertices() == 0) continue;
      QueryEngineOptions options;
      options.coalesce_wait_ms = 0.05;
      options.bfs.split_size = 128;  // small tasks so stealing happens
      QueryEngine engine(gc.graph, &pool, options);
      ConcurrentOracleTrial(&engine, gc.graph, /*num_clients=*/4,
                            /*queries_per_client=*/4, seed,
                            "graph=" + gc.name + " " + ReproNote(seed));
      engine.Drain();
      QueryEngineStats stats = engine.Stats();
      EXPECT_EQ(stats.queries_admitted, 16u);
      EXPECT_EQ(stats.queries_completed, 16u);
    }
  }
}

TEST(QueryEngineTest, WidthOverflowSplitsIntoMultipleBatches) {
  Graph graph = ErdosRenyi(400, 1200, /*seed=*/42);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  QueryEngineOptions options;
  options.max_batch_width = 64;
  options.coalesce_wait_ms = 5.0;  // let the burst pile up past the cap
  QueryEngine engine(graph, &pool, options);

  Rng rng(9);
  std::vector<QueryEngine::Submission> subs;
  std::vector<Vertex> sources;
  // 3x the maximum width pending at once.
  for (int q = 0; q < 192; ++q) {
    Vertex s = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
    sources.push_back(s);
    Query query;
    query.source = s;
    subs.push_back(engine.Submit(std::move(query)));
  }
  std::vector<Level> expected(graph.num_vertices());
  for (size_t q = 0; q < subs.size(); ++q) {
    QueryResult result = subs[q].result.get();
    ASSERT_EQ(result.status, QueryStatus::kOk);
    SequentialBfs(graph, sources[q], expected.data());
    EXPECT_EQ(result.levels, expected) << "query " << q;
  }
  QueryEngineStats stats = engine.Stats();
  // No dispatch may exceed the cap, so >= ceil(192/64) dispatches.
  EXPECT_GE(stats.batches_run + stats.single_runs, 3u);
  EXPECT_EQ(stats.queries_completed, 192u);
  // Occupancy is queries per slot of the chosen width, in (0, 1].
  EXPECT_GT(stats.batch_occupancy.mean(), 0.0);
  EXPECT_LE(stats.batch_occupancy.max(), 1.0);
}

TEST(QueryEngineTest, DuplicateSourcesAndAllQueryTypes) {
  Graph graph = ErdosRenyi(300, 700, /*seed=*/3);
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  const Vertex n = graph.num_vertices();
  const Vertex source = 17;

  std::vector<Level> expected(n);
  SequentialBfs(graph, source, expected.data());

  // Duplicate-source queries of every type, submitted together so they
  // land in one batch: answers must agree with each other and the
  // oracle.
  Query levels_q;
  levels_q.source = source;
  Query dup_q = levels_q;
  Query dist_q;
  dist_q.type = QueryType::kDistances;
  dist_q.source = source;
  dist_q.targets = {0, source, n - 1, 0};  // duplicates allowed
  Query reach_q;
  reach_q.type = QueryType::kReachability;
  reach_q.source = source;
  reach_q.targets = {0, n - 1};
  Query khop_q;
  khop_q.type = QueryType::kKHop;
  khop_q.source = source;
  khop_q.max_hops = 2;
  Query empty_targets_q;
  empty_targets_q.type = QueryType::kDistances;
  empty_targets_q.source = source;

  auto s1 = engine.Submit(std::move(levels_q));
  auto s2 = engine.Submit(std::move(dup_q));
  auto s3 = engine.Submit(std::move(dist_q));
  auto s4 = engine.Submit(std::move(reach_q));
  auto s5 = engine.Submit(std::move(khop_q));
  auto s6 = engine.Submit(std::move(empty_targets_q));

  QueryResult r1 = s1.result.get();
  QueryResult r2 = s2.result.get();
  ASSERT_EQ(r1.status, QueryStatus::kOk);
  ASSERT_EQ(r2.status, QueryStatus::kOk);
  EXPECT_EQ(r1.levels, r2.levels);
  for (Vertex v = 0; v < n; ++v) ASSERT_EQ(r1.levels[v], expected[v]);

  QueryResult r3 = s3.result.get();
  ASSERT_EQ(r3.status, QueryStatus::kOk);
  ASSERT_EQ(r3.levels.size(), 4u);
  EXPECT_EQ(r3.levels[0], expected[0]);
  EXPECT_EQ(r3.levels[1], 0);  // distance to itself
  EXPECT_EQ(r3.levels[2], expected[n - 1]);
  EXPECT_EQ(r3.levels[3], r3.levels[0]);

  QueryResult r4 = s4.result.get();
  ASSERT_EQ(r4.status, QueryStatus::kOk);
  ASSERT_EQ(r4.reachable.size(), 2u);
  EXPECT_EQ(r4.reachable[0], expected[0] != kLevelUnreached ? 1 : 0);
  EXPECT_EQ(r4.reachable[1], expected[n - 1] != kLevelUnreached ? 1 : 0);

  QueryResult r5 = s5.result.get();
  ASSERT_EQ(r5.status, QueryStatus::kOk);
  std::vector<uint64_t> khop_expected =
      KHopSizesFromLevels({expected.data(), expected.size()}, 2);
  EXPECT_EQ(r5.khop_sizes, khop_expected);

  QueryResult r6 = s6.result.get();
  ASSERT_EQ(r6.status, QueryStatus::kOk);
  EXPECT_TRUE(r6.levels.empty());
}

TEST(QueryEngineTest, InvalidQueriesAreRejectedNotTraversed) {
  Graph graph = Path(10);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);

  Query bad_source;
  bad_source.source = 10;  // out of range
  auto s1 = engine.Submit(std::move(bad_source));
  EXPECT_EQ(s1.result.get().status, QueryStatus::kInvalid);

  Query bad_target;
  bad_target.type = QueryType::kDistances;
  bad_target.source = 0;
  bad_target.targets = {3, 99};
  auto s2 = engine.Submit(std::move(bad_target));
  EXPECT_EQ(s2.result.get().status, QueryStatus::kInvalid);

  engine.Drain();
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_invalid, 2u);
  EXPECT_EQ(stats.queries_completed, 0u);
  EXPECT_EQ(stats.batches_run + stats.single_runs, 0u);
}

TEST(QueryEngineTest, CancelBeforeDispatch) {
  Graph graph = Path(50);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngineOptions options;
  // Long linger: the query stays in the admission queue long enough for
  // a deterministic cancel (the test finishes as soon as the future is
  // fulfilled, so nothing actually waits this long).
  options.coalesce_wait_ms = 2000.0;
  QueryEngine engine(graph, &pool, options);

  Query query;
  query.source = 1;
  auto sub = engine.Submit(std::move(query));
  EXPECT_TRUE(engine.Cancel(sub.id));
  EXPECT_EQ(sub.result.get().status, QueryStatus::kCancelled);
  EXPECT_FALSE(engine.Cancel(sub.id));  // already finished
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_cancelled, 1u);
  EXPECT_EQ(stats.batches_run + stats.single_runs, 0u);
}

TEST(QueryEngineTest, CancelAfterDispatchFailsAndResultArrives) {
  Graph graph = Path(50);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngineOptions options;
  options.coalesce_wait_ms = 0.0;  // dispatch immediately
  QueryEngine engine(graph, &pool, options);

  Query query;
  query.source = 0;
  auto sub = engine.Submit(std::move(query));
  QueryResult result = sub.result.get();  // wait until dispatched + done
  EXPECT_EQ(result.status, QueryStatus::kOk);
  EXPECT_FALSE(engine.Cancel(sub.id));
  EXPECT_EQ(result.levels[49], 49);
}

TEST(QueryEngineTest, ExpiredDeadlineCompletesWithoutTraversal) {
  Graph graph = Path(50);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngineOptions options;
  options.coalesce_wait_ms = 0.0;
  QueryEngine engine(graph, &pool, options);

  Query query;
  query.source = 0;
  query.deadline_ns = NowNanos() - 1;  // already past
  auto sub = engine.Submit(std::move(query));
  EXPECT_EQ(sub.result.get().status, QueryStatus::kDeadlineExceeded);
  engine.Drain();
  EXPECT_EQ(engine.Stats().queries_expired, 1u);
}

TEST(QueryEngineTest, ShutdownCancelsQueuedQueries) {
  Graph graph = Path(50);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  std::future<QueryResult> pending_result;
  {
    QueryEngineOptions options;
    options.coalesce_wait_ms = 2000.0;  // keep it queued until shutdown
    QueryEngine engine(graph, &pool, options);
    Query query;
    query.source = 1;
    pending_result = engine.Submit(std::move(query)).result;
  }
  EXPECT_EQ(pending_result.get().status, QueryStatus::kCancelled);
}

TEST(QueryEngineTest, CountersBalanceAfterMixedTraffic) {
  Graph graph = ErdosRenyi(200, 500, /*seed=*/8);
  WorkerPool pool({.num_workers = 3, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  Rng rng(77);
  std::vector<QueryEngine::Submission> subs;
  for (int q = 0; q < 40; ++q) {
    Query query;
    query.source = static_cast<Vertex>(rng.NextBounded(250));  // some invalid
    subs.push_back(engine.Submit(std::move(query)));
  }
  if (!subs.empty()) engine.Cancel(subs.front().id);  // may race dispatch
  engine.Drain();
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_admitted, 40u);
  EXPECT_EQ(stats.queries_completed + stats.queries_cancelled +
                stats.queries_expired + stats.queries_invalid,
            40u);
  for (auto& sub : subs) {
    EXPECT_TRUE(sub.result.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready);
  }
}

// The acceptance stress: concurrent clients through the engine while
// the WorkerPool replays the steal_heavy and starvation schedules from
// the scheduler perturbation suite. Runs under TSan via the
// engine/differential labels.
TEST(QueryEngineStressTest, ConcurrentClientsUnderPerturbedSchedules) {
  Graph graph = ErdosRenyi(600, 2400, /*seed=*/1234);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  const uint64_t seed = diff::TrialSeed(7);
  for (const NamedStealPolicy& schedule : PerturbationSchedules()) {
    if (schedule.name != "steal_heavy" && schedule.name != "starvation") {
      continue;
    }
    SCOPED_TRACE(schedule.name);
    // Installed between loops, before the engine's dispatcher exists.
    pool.SetStealPolicy(schedule.policy);
    {
      QueryEngineOptions options;
      options.coalesce_wait_ms = 0.1;
      options.bfs.split_size = 64;  // many tasks -> many (forced) steals
      QueryEngine engine(graph, &pool, options);
      ConcurrentOracleTrial(&engine, graph, /*num_clients=*/4,
                            /*queries_per_client=*/6, seed,
                            "schedule=" + schedule.name + " " +
                                ReproNote(seed));
      engine.Drain();
    }
    pool.SetStealPolicy(nullptr);
  }
}

// Trace-backed accounting (the "obs" leg): every admitted query emits
// exactly one terminal "query.done" instant, and the latency histogram
// holds exactly one sample per kOk completion. The histogram half runs
// in every build; the trace half needs PBFS_TRACING.
TEST(QueryEngineObsTest, EveryAdmittedQueryEmitsOneTerminalEvent) {
#ifndef PBFS_TRACING
  GTEST_SKIP() << "library built with PBFS_TRACING=OFF";
#else
  Graph graph = ErdosRenyi(300, 900, /*seed=*/21);
  WorkerPool pool({.num_workers = 4, .pin_threads = false});
  obs::Tracer::Get().Start();
  uint64_t admitted;
  QueryEngineStats stats;
  {
    QueryEngineOptions options;
    options.coalesce_wait_ms = 0.1;
    QueryEngine engine(graph, &pool, options);
    Rng rng(13);
    std::vector<QueryEngine::Submission> subs;
    for (int q = 0; q < 48; ++q) {
      Query query;
      // ~1 in 5 sources is out of range -> kInvalid terminal, so the
      // count covers the non-kOk completion paths too.
      query.source = static_cast<Vertex>(rng.NextBounded(375));
      subs.push_back(engine.Submit(std::move(query)));
    }
    engine.Drain();
    stats = engine.Stats();
    admitted = stats.queries_admitted;
    for (auto& sub : subs) sub.result.get();
  }
  obs::TraceDump dump = obs::Tracer::Get().Stop();

  std::set<uint64_t> done_ids;
  uint64_t done_events = 0;
  uint64_t ok_events = 0;
  for (const obs::TraceThreadDump& thread : dump.threads) {
    for (const obs::TraceEvent& event : thread.events) {
      if (event.name == nullptr ||
          std::string_view(event.name) != "query.done") {
        continue;
      }
      ++done_events;
      done_ids.insert(event.Arg("query"));
      if (event.Arg("status") ==
          static_cast<uint64_t>(QueryStatus::kOk)) {
        ++ok_events;
      }
    }
  }
  EXPECT_EQ(admitted, 48u);
  // Exactly one terminal per admitted query: total count matches AND
  // every id is distinct (a double-complete would collide).
  EXPECT_EQ(done_events, admitted);
  EXPECT_EQ(done_ids.size(), admitted);
  EXPECT_EQ(ok_events, stats.queries_completed);
  // One latency sample per kOk query, in every build mode.
  EXPECT_EQ(stats.latency_ms.count(), stats.queries_completed);
  EXPECT_GT(stats.queries_completed, 0u);
  EXPECT_GT(stats.queries_invalid, 0u);  // the invalid path was exercised
#endif
}

TEST(QueryEngineObsTest, LatencyHistogramCountsOkCompletions) {
  // Histogram accounting must hold without any trace session (it is
  // part of QueryEngineStats, not of the tracing build flavor).
  Graph graph = ErdosRenyi(200, 600, /*seed=*/33);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  std::vector<QueryEngine::Submission> subs;
  for (int q = 0; q < 10; ++q) {
    Query query;
    query.source = static_cast<Vertex>(q * 17 % 200);
    subs.push_back(engine.Submit(std::move(query)));
  }
  engine.Drain();
  for (auto& sub : subs) {
    EXPECT_EQ(sub.result.get().status, QueryStatus::kOk);
  }
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_completed, 10u);
  EXPECT_EQ(stats.latency_ms.count(), 10u);
  // Quantiles come from real samples: positive and ordered.
  EXPECT_GT(stats.latency_ms.max(), 0.0);
  EXPECT_LE(stats.latency_ms.Quantile(0.5), stats.latency_ms.Quantile(0.99));
  EXPECT_NE(stats.ToString().find("latency"), std::string::npos);
}

// ---- Engine behind server-side admission, driven to overload ----

#ifdef PBFS_TRACING
// Sums every sample of a counter family in Prometheus exposition text,
// across label sets (pbfs_server_shed_total has one sample per shed
// reason).
double SumFamily(const std::string& exposition, const std::string& family) {
  double sum = 0.0;
  size_t pos = 0;
  while ((pos = exposition.find(family, pos)) != std::string::npos) {
    const size_t line_start = exposition.rfind('\n', pos) + 1;
    if (line_start != pos || exposition.compare(pos, 2, "# ") == 0) {
      pos += family.size();
      continue;  // HELP/TYPE lines or a mid-line mention
    }
    const char next = exposition[pos + family.size()];
    if (next != '{' && next != ' ') {  // a longer family name
      pos += family.size();
      continue;
    }
    const size_t space = exposition.find(' ', pos + family.size());
    sum += std::strtod(exposition.c_str() + space + 1, nullptr);
    pos = space;
  }
  return sum;
}
#endif  // PBFS_TRACING

TEST(QueryEngineOverloadTest, SaturatedAdmissionShedsAndCountsExactly) {
  // The engine never sheds on its own (kShed is produced only by the
  // server's admission layer); saturating a tiny admission queue in
  // front of it must (a) answer every request, (b) mark the overflow
  // kShed, and (c) account each shed exactly once in
  // pbfs_server_shed_total.
  Graph graph = ErdosRenyi(2048, 8192, /*seed=*/77);
  WorkerPool pool({.num_workers = 2, .pin_threads = false});
  QueryEngine engine(graph, &pool);
  server::ServerOptions opts;
  opts.admission.max_queue = 2;
  opts.max_engine_inflight = 1;
  opts.session.max_inflight = 256;
  opts.session.resume_inflight = 128;
  server::PbfsServer srv(&engine, opts);
  ASSERT_TRUE(srv.Start());

#ifdef PBFS_TRACING
  obs::MetricsRegistry registry;
  srv.ExportLiveMetrics(&registry);
  EXPECT_EQ(SumFamily(registry.ExpositionText(), "pbfs_server_shed_total"),
            0.0);
#endif

  server::PbfsClient client;
  ASSERT_TRUE(client.Connect({.port = srv.port()}));
  constexpr int kBurst = 96;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    server::QueryRequest req;
    req.request_id = static_cast<uint64_t>(i);
    req.type = QueryType::kLevels;
    req.source = static_cast<Vertex>(i % 2048);
    EncodeQueryRequest(req, &burst);
  }
  ASSERT_TRUE(client.Send(burst));

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    server::Response resp;
    std::string error;
    ASSERT_TRUE(client.ReadResponse(&resp, &error)) << error;
    if (resp.query.status == QueryStatus::kShed) {
      ++shed;
    } else {
      ASSERT_EQ(resp.query.status, QueryStatus::kOk);
      ++ok;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GT(shed, 0);  // queue cap 2 + inflight 1 vs a 96 burst

  const server::ServerStats stats = srv.GetStats();
  EXPECT_EQ(stats.admission.shed_queue_full + stats.admission.shed_deadline,
            static_cast<uint64_t>(shed));
  EXPECT_EQ(stats.admission.admitted, static_cast<uint64_t>(ok));
  // The engine processed exactly the admitted queries; sheds never
  // reached it. (Drain first: the response hits the wire a hair before
  // the engine's completion counter ticks.)
  engine.Drain();
  EXPECT_EQ(engine.Stats().queries_completed, static_cast<uint64_t>(ok));

#ifdef PBFS_TRACING
  // One increment per shed, summed across the reason labels.
  EXPECT_EQ(SumFamily(registry.ExpositionText(), "pbfs_server_shed_total"),
            static_cast<double>(shed));
#endif
  srv.Stop();
}

}  // namespace
}  // namespace pbfs
