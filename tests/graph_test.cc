#include "graph/graph.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/types.h"

namespace pbfs {
namespace {

TEST(GraphTest, FromEdgesBuildsSymmetricSortedCsr) {
  std::vector<Edge> edges = {{0, 1}, {2, 1}, {0, 2}};
  Graph g = Graph::FromEdges(4, edges);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 6u);

  std::vector<Vertex> n0(g.Neighbors(0).begin(), g.Neighbors(0).end());
  std::vector<Vertex> n1(g.Neighbors(1).begin(), g.Neighbors(1).end());
  std::vector<Vertex> n2(g.Neighbors(2).begin(), g.Neighbors(2).end());
  EXPECT_EQ(n0, (std::vector<Vertex>{1, 2}));
  EXPECT_EQ(n1, (std::vector<Vertex>{0, 2}));
  EXPECT_EQ(n2, (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphTest, SelfLoopsDropped) {
  std::vector<Edge> edges = {{0, 0}, {1, 1}, {0, 1}};
  Graph g = Graph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, ParallelEdgesDeduplicated) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  Graph g = Graph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, VerticesWithoutEdges) {
  std::vector<Edge> edges = {{0, 1}};
  Graph g = Graph::FromEdges(10, edges);
  EXPECT_EQ(g.NumConnectedVertices(), 2u);
  for (Vertex v = 2; v < 10; ++v) {
    EXPECT_TRUE(g.Neighbors(v).empty());
  }
}

TEST(GraphTest, HasEdge) {
  Graph g = Graph::FromEdges(4, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, MaxDegree) {
  Graph star = Star(8);
  EXPECT_EQ(star.MaxDegree(), 7u);
  EXPECT_EQ(star.Degree(0), 7u);
  EXPECT_EQ(star.Degree(3), 1u);
}

TEST(GraphTest, MemoryBytesAccountsCsrArrays) {
  Graph g = Complete(10);  // 45 undirected edges
  // 90 directed targets * 4 bytes + 11 offsets * 8 bytes, both rounded
  // up to page multiples by the aligned allocator.
  EXPECT_GE(g.MemoryBytes(), 90 * 4 + 11 * 8);
}

TEST(GraphTest, FromCsrRoundTrip) {
  Graph original = Grid(5, 5);
  AlignedBuffer<EdgeIndex> offsets(original.num_vertices() + 1);
  AlignedBuffer<Vertex> targets(original.num_directed_edges());
  for (Vertex v = 0; v <= original.num_vertices(); ++v) {
    offsets[v] = original.offsets()[v];
  }
  for (EdgeIndex e = 0; e < original.num_directed_edges(); ++e) {
    targets[e] = original.targets()[e];
  }
  Graph copy = Graph::FromCsr(original.num_vertices(), std::move(offsets),
                              std::move(targets));
  EXPECT_EQ(copy.num_vertices(), original.num_vertices());
  EXPECT_EQ(copy.num_edges(), original.num_edges());
  for (Vertex v = 0; v < copy.num_vertices(); ++v) {
    EXPECT_EQ(copy.Degree(v), original.Degree(v));
  }
}

TEST(StructuredGraphsTest, PathShape) {
  Graph g = Path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(4), 1u);
}

TEST(StructuredGraphsTest, CycleShape) {
  Graph g = Cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 2u);
}

TEST(StructuredGraphsTest, CompleteShape) {
  Graph g = Complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
}

TEST(StructuredGraphsTest, GridShape) {
  Graph g = Grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.Degree(0), 2u);   // corner
  EXPECT_EQ(g.Degree(5), 4u);   // interior
}

TEST(StructuredGraphsTest, BinaryTreeShape) {
  Graph g = BinaryTree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 3u);
  EXPECT_EQ(g.Degree(6), 1u);
}

TEST(StructuredGraphsTest, StarShape) {
  Graph g = Star(1);
  EXPECT_EQ(g.num_edges(), 0u);
  Graph g2 = Star(2);
  EXPECT_EQ(g2.num_edges(), 1u);
}

}  // namespace
}  // namespace pbfs
