#!/usr/bin/env bash
# Runs every evaluation harness and captures the output, as shipped in
# bench_output.txt. Pass a build directory as $1 (default: build).
set -u
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "### $(basename "$b")"
  "$b"
  echo
done
