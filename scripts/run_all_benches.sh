#!/usr/bin/env bash
# Runs every evaluation harness and collects its artifacts under
# bench/out/<timestamp>/ (with a bench/out/latest symlink):
#
#   <name>.txt              stdout of the run
#   BENCH_<name>.json       bench document (profile-capable benches run
#                           with --profile, so it includes counter
#                           totals and the profiler's per-phase
#                           attribution table)
#   METRICS_<name>.json     aggregated trace metrics (--metrics-out)
#   <name>.folded           sampled stacks (--profile-out), loadable in
#                           speedscope / flamegraph.pl, diffable with
#                           scripts/perf_attribution.py
#
# Benches that do not register the observability CLI run bare and only
# produce the .txt capture. Pass a build directory as $1 (default:
# build). Prints the output directory on exit so CI can upload it.
set -u
BUILD_DIR="${1:-build}"
STAMP="$(date +%Y%m%d-%H%M%S)"
OUT_DIR="bench/out/${STAMP}"
mkdir -p "$OUT_DIR"

# Benches wired to ObsCli (grep bench/*.cc for ObsCli when adding one):
# these understand --profile / --metrics-out / --profile-out and emit
# BENCH_<name>.json into the current directory.
PROFILE_BENCHES="engine_throughput fig02_utilization fig06_visited_neighbors \
fig07_updated_states fig09_worker_skew fig11_thread_scaling sketch_oracle"

is_profile_bench() {
  local name="$1"
  for p in $PROFILE_BENCHES; do
    [ "$p" = "$name" ] && return 0
  done
  return 1
}

for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  abs="$(cd "$(dirname "$b")" && pwd)/$name"
  echo "### $name"
  if is_profile_bench "$name"; then
    (cd "$OUT_DIR" &&
     "$abs" --profile \
        --metrics-out="METRICS_${name}.json" \
        --profile-out="${name}.folded" \
        > "${name}.txt" 2>&1)
    status=$?
    tail -n 5 "$OUT_DIR/${name}.txt"
  else
    "$b" > "$OUT_DIR/${name}.txt" 2>&1
    status=$?
    tail -n 5 "$OUT_DIR/${name}.txt"
  fi
  [ $status -ne 0 ] && echo "WARNING: $name exited with status $status"
  echo
done

ln -sfn "$STAMP" bench/out/latest
echo "artifacts: $OUT_DIR"
