#!/usr/bin/env bash
# Paper-sized configuration for multi-core machines (the defaults are
# laptop-sized). Expect hours of runtime and >100 GB of RAM at the
# largest scales; trim --max_scale to your memory budget.
set -u
BUILD_DIR="${1:-build}"
THREADS="${THREADS:-60}"
"$BUILD_DIR"/bench/fig08_labeling_runtime --scale 27 --threads "$THREADS"
"$BUILD_DIR"/bench/fig10_sequential --min_scale 16 --max_scale 26
"$BUILD_DIR"/bench/fig11_thread_scaling --scale 26 --max_threads "$THREADS" --sources 23040
"$BUILD_DIR"/bench/fig12_size_scaling --min_scale 16 --max_scale 30 --threads "$THREADS"
"$BUILD_DIR"/bench/table1_graphs --threads "$THREADS" --kron_scale 26
