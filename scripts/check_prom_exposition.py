#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (format 0.0.4) document.

CI curls /metrics from a live binary and pipes the body through this
checker; it enforces the structural rules a real Prometheus scraper
relies on, without needing Prometheus itself in the image:

  * every line is a comment, blank, or `name{labels} value [ts]`
  * metric and label names match the exposition grammar
  * a family's # TYPE precedes its samples, and all samples of a
    family are contiguous (an interleaved family is the classic
    hand-rolled-exporter bug)
  * values parse as Go floats (including +Inf/-Inf/NaN)
  * histogram `_bucket` series are cumulative and close with le="+Inf"
  * summary quantile values are non-decreasing in the quantile
  * counters are finite and non-negative

Usage:
    curl -s localhost:9464/metrics | \
        scripts/check_prom_exposition.py --require pbfs_scrapes_total

Exit 0 when the document is valid and every --require family has at
least one sample; 1 otherwise, with each violation on stderr.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{label="value",...} value [timestamp] -- labels optional.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>-?[0-9]+))?$")
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def base_family(name):
    """Family a sample line belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on junk


def main():
    parser = argparse.ArgumentParser(
        description="Validate Prometheus text exposition read from stdin.")
    parser.add_argument(
        "--require", action="append", default=[], metavar="FAMILY",
        help="fail unless this family has at least one sample "
             "(repeatable)")
    args = parser.parse_args()

    errors = []
    types = {}            # family -> declared type
    seen_samples = set()  # families that have emitted at least one sample
    closed = set()        # families whose sample block has ended
    buckets = {}          # (family, frozen labels sans le) -> last cumulative
    quantiles = {}        # (family, labels sans quantile) -> (last q, last v)
    current = None        # family of the contiguous block being read

    for lineno, raw in enumerate(sys.stdin.read().splitlines(), start=1):
        def err(message):
            errors.append(f"line {lineno}: {message}: {raw!r}")

        if raw.startswith("# TYPE "):
            parts = raw.split(" ", 3)
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                err("malformed # TYPE")
                continue
            if parts[2] in types:
                err("duplicate # TYPE for family")
            types[parts[2]] = parts[3]
            continue
        if raw.startswith("#") or not raw.strip():
            continue

        match = SAMPLE.match(raw)
        if not match:
            err("not a comment, blank, or sample line")
            continue
        name = match.group("name")
        family = base_family(name)
        if not METRIC_NAME.match(name):
            err("invalid metric name")
        if family not in types:
            err("sample before its # TYPE header")
        if family != current:
            if family in closed:
                err("family samples are not contiguous")
            if current is not None:
                closed.add(current)
            current = family
        seen_samples.add(family)

        labels = {}
        label_text = match.group("labels")
        if label_text is not None:
            consumed = 0
            for pair in LABEL_PAIR.finditer(label_text):
                labels[pair.group("name")] = pair.group("value")
                consumed = pair.end()
                if not LABEL_NAME.match(pair.group("name")):
                    err("invalid label name")
            # Anything the pair regex did not eat (besides commas) is a
            # quoting or escaping bug in the exporter.
            leftovers = label_text[consumed:].replace(",", "").strip()
            if leftovers:
                err(f"unparsable label text {leftovers!r}")

        try:
            value = parse_value(match.group("value"))
        except ValueError:
            err("unparsable sample value")
            continue

        family_type = types.get(family)
        if family_type == "counter" and not value >= 0:
            err("counter value must be finite and non-negative")
        if family_type == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                err("_bucket series without an le label")
            else:
                key = (family,
                       tuple(sorted((k, v) for k, v in labels.items()
                                    if k != "le")))
                if value < buckets.get(key, 0):
                    err("histogram buckets are not cumulative")
                buckets[key] = value
                if labels["le"] == "+Inf":
                    buckets.pop(key)  # family closed correctly
        if family_type == "summary" and "quantile" in labels:
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "quantile")))
            q = float(labels["quantile"])
            last_q, last_v = quantiles.get(key, (-1.0, -math.inf))
            if q <= last_q:
                err("summary quantiles out of order")
            if value < last_v:
                err("summary quantile values decrease with q")
            quantiles[key] = (q, value)

    for key in buckets:
        errors.append(f"histogram {key[0]} never closed with le=\"+Inf\"")
    for family in args.require:
        if family not in seen_samples:
            errors.append(f"required family {family} has no samples")

    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} exposition violation(s)", file=sys.stderr)
        return 1
    print(f"exposition ok: {len(seen_samples)} families with samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
