#!/usr/bin/env python3
"""Diff two BENCH_*.json files and flag regressions.

Every bench binary (and engine_throughput / the fig benches under
--profile) emits a flat-ish JSON document of run parameters and
measured metrics.  This tool compares a baseline run against a
candidate run metric by metric, prints the deltas, and exits non-zero
when a metric regressed by more than the threshold -- so a CI leg or a
local A/B loop can gate on it:

    ./bench/engine_throughput --json_out base.json
    # ... apply a change, rebuild ...
    ./bench/engine_throughput --json_out new.json
    python3 scripts/bench_compare.py base.json new.json --threshold 0.10

Nested objects (the --profile additions: perf_per_worker, numa_audit)
are flattened with dotted keys, so per-worker counter drift shows up
like any other metric.  Which direction counts as a regression is
inferred from the key name: throughput-like metrics (qps, speedup,
...) must not drop, cost-like metrics (seconds, misses, misplaced,
...) must not rise, and anything unrecognised is reported but never
gates.  Use --gate to restrict gating to keys matching a regex.
"""

import argparse
import json
import re
import sys

# Key-name fragments that say "bigger is better" / "bigger is worse".
# Checked against the last dotted component, longest match wins.
HIGHER_IS_BETTER = ("qps", "speedup", "throughput", "ipc", "rate_ok")
LOWER_IS_BETTER = (
    "seconds",
    "_s",
    "_ms",
    "_us",
    "skew",
    "misses",
    "miss_rate",
    "misplaced",
    "misplacement",
    "dropped",
    "stalled",
    "cycles",
    "bytes_per_edge",
    "wait",
)


def flatten(value, prefix=""):
    """Yield (dotted_key, leaf) pairs for scalars in a nested document."""
    if isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(child, f"{prefix}{key}.")
    elif isinstance(value, list):
        for index, child in enumerate(value):
            yield from flatten(child, f"{prefix}{index}.")
    else:
        yield prefix[:-1], value


def load_flat(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    flat = {}
    for key, value in flatten(doc):
        flat[key] = value
    return flat


def direction(key):
    """+1 when higher is better, -1 when lower is better, 0 when unknown."""
    leaf = key.rsplit(".", 1)[-1]
    best, sign = 0, 0
    for fragment in HIGHER_IS_BETTER:
        if fragment in leaf and len(fragment) > best:
            best, sign = len(fragment), +1
    for fragment in LOWER_IS_BETTER:
        if (leaf.endswith(fragment) or fragment in leaf) and len(fragment) > best:
            best, sign = len(fragment), -1
    return sign


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; exit 1 on regression.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative worsening that counts as a regression "
             "(default 0.05 = 5%%)")
    parser.add_argument(
        "--gate", default="",
        help="regex; only matching keys can fail the run "
             "(default: every metric with a known direction)")
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (for CI legs that "
             "track noisy shared-runner baselines without gating merges)")
    args = parser.parse_args()

    base = load_flat(args.baseline)
    cand = load_flat(args.candidate)
    gate = re.compile(args.gate) if args.gate else None

    regressions = []
    rows = []
    for key in sorted(set(base) | set(cand)):
        old, new = base.get(key), cand.get(key)
        if key not in base or key not in cand:
            rows.append((key, old, new, None, "only in one file"))
            continue
        if not isinstance(old, (int, float)) or isinstance(old, bool) or \
           not isinstance(new, (int, float)) or isinstance(new, bool):
            if old != new:
                rows.append((key, old, new, None, "changed"))
            continue
        delta = new - old
        rel = delta / old if old != 0 else (0.0 if delta == 0 else float("inf"))
        sign = direction(key)
        worsening = -rel * sign  # positive when the metric moved the wrong way
        note = ""
        if sign != 0 and worsening > args.threshold:
            note = "REGRESSION"
            if gate is None or gate.search(key):
                regressions.append(key)
            else:
                note = "regression (not gated)"
        elif sign != 0 and -worsening > args.threshold:
            note = "improved"
        rows.append((key, old, new, rel, note))

    width = max((len(r[0]) for r in rows), default=10)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  "
          f"{'delta':>9}  note")
    for key, old, new, rel, note in rows:
        fmt = lambda v: f"{v:>14.6g}" if isinstance(v, (int, float)) and \
            not isinstance(v, bool) else f"{str(v):>14}"
        rel_text = f"{rel:>+8.1%}" if rel is not None and rel != float("inf") \
            else f"{'n/a':>9}"
        print(f"{key:<{width}}  {fmt(old)}  {fmt(new)}  {rel_text}  {note}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.1%}: {', '.join(regressions)}")
        # When both documents carry a sampled profile, name the phase
        # behind the regression: the (variant, level, direction) rows
        # with the largest cycle/sample growth, with the frames the new
        # samples landed in.
        try:
            import perf_attribution
            print("\nphase attribution (candidate vs baseline):")
            print(perf_attribution.report_regression(
                args.baseline, args.candidate))
        except ImportError:
            pass
        if args.warn_only:
            print("--warn-only: reporting without failing")
            return 0
        return 1
    print(f"\nno regressions beyond {args.threshold:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
