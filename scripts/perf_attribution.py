#!/usr/bin/env python3
"""Per-phase perf attribution reports from profiler output.

Reads the `profiler` section of a BENCH_*.json (written by any bench
run with --profile) or a folded-stack file (written by --profile-out,
/debug/pprof, or a watchdog episode dump), and prints the "worst
levels" table: one row per (variant, level, direction) phase, ranked
by attributed cycles (falling back to samples, then wall time, when
hardware counters were unavailable).

With two inputs it diffs them, ranking phases by cycle delta, so a
perf regression names the phase that regressed and the frames the new
samples landed in:

    ./bench/engine_throughput --profile && mv BENCH_*.json base.json
    # ... apply a change, rebuild ...
    ./bench/engine_throughput --profile && mv BENCH_*.json cand.json
    python3 scripts/perf_attribution.py base.json cand.json

scripts/bench_compare.py imports report_regression() to name the
regressed phase whenever one of its gated metrics trips.

Diffing a file against itself prints "no phase deltas" and exits 0
(the CI self-check). Exit status is 0 unless an input is unreadable:
this is an analysis tool, not a gate -- gating lives in
bench_compare.py.
"""

import argparse
import json
import re
import sys

_PHASE_RE = re.compile(r"^(?P<variant>.*)/L(?P<level>\d+)/(?P<dir>bu|td)$")


def parse_phase_label(label):
    """'ms-pbfs/L5/bu' -> (variant, level, direction) tuple."""
    match = _PHASE_RE.match(label)
    if not match:
        return (label, -1, "none")
    direction = "bottom_up" if match.group("dir") == "bu" else "top_down"
    return (match.group("variant"), int(match.group("level")), direction)


def phase_label(phase):
    variant, level, direction = phase["variant"], phase["level"], phase["direction"]
    if level < 0:
        return variant
    suffix = "bu" if direction == "bottom_up" else "td"
    return f"{variant}/L{level}/{suffix}"


def _phases_from_folded(lines):
    """Fold `phase;frame;...;leaf count` lines into per-phase rows."""
    by_phase = {}
    for line in lines:
        line = line.rstrip("\n")
        if not line:
            continue
        stack, _, count_text = line.rpartition(" ")
        try:
            count = int(count_text)
        except ValueError:
            continue
        frames = stack.split(";")
        variant, level, direction = parse_phase_label(frames[0])
        key = (variant, level, direction)
        phase = by_phase.setdefault(
            key,
            {
                "phase": frames[0],
                "variant": variant,
                "level": level,
                "direction": direction,
                "samples": 0,
                "cycles": 0,
                "wall_ms": 0.0,
                "_leaf_counts": {},
            },
        )
        phase["samples"] += count
        if len(frames) > 1:
            leaf = frames[-1]
            phase["_leaf_counts"][leaf] = phase["_leaf_counts"].get(leaf, 0) + count
    total = sum(p["samples"] for p in by_phase.values())
    for phase in by_phase.values():
        phase["samples_pct"] = (
            100.0 * phase["samples"] / total if total else 0.0
        )
        ranked = sorted(
            phase.pop("_leaf_counts").items(), key=lambda kv: -kv[1]
        )
        phase["top_frames"] = [frame for frame, _ in ranked[:3]]
    return sorted(by_phase.values(), key=_rank_key)


def load_phases(path):
    """Phase rows from a BENCH_*.json or a folded-stack file.

    Returns (phases, sampler) where sampler is the stats dict from a
    BENCH document ({} for folded files). Raises ValueError when a
    BENCH document carries the profiler_unavailable marker instead of
    a profile.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        doc = json.loads(text)
        if doc.get("profiler_unavailable"):
            raise ValueError(
                f"{path}: profiler_unavailable "
                f"({doc.get('profiler_unavailable_reason', 'no reason recorded')})"
            )
        profiler = doc.get("profiler")
        if not isinstance(profiler, dict):
            raise ValueError(
                f"{path}: no `profiler` section -- was the bench run with "
                "--profile and sampling enabled?"
            )
        phases = sorted(profiler.get("phases", []), key=_rank_key)
        return phases, profiler.get("sampler", {})
    return _phases_from_folded(text.splitlines()), {}


def _rank_key(phase):
    """Worst first: cycles, then samples, then wall time."""
    return (
        -phase.get("cycles", 0),
        -phase.get("samples", 0),
        -phase.get("wall_ms", 0.0),
    )


def _fmt_count(value):
    if value >= 10_000_000:
        return f"{value / 1e6:.0f}M"
    if value >= 10_000:
        return f"{value / 1e3:.0f}k"
    return str(value)


def report(phases, sampler=None, max_rows=12):
    """Single-profile 'worst levels' table as a string."""
    lines = []
    if sampler:
        lines.append(
            "sampler: {} backend, {} samples at {} Hz, "
            "{} dropped, overhead {:.2%}".format(
                sampler.get("backend", "?"),
                sampler.get("samples", 0),
                sampler.get("sample_hz", 0),
                sampler.get("dropped", 0),
                sampler.get("overhead_frac", 0.0),
            )
        )
    if not phases:
        lines.append("no phases recorded")
        return "\n".join(lines)
    width = max(len(phase_label(p)) for p in phases[:max_rows])
    width = max(width, len("phase"))
    lines.append(
        f"{'phase':<{width}}  {'samples':>8} {'smp%':>6} {'cycles':>8} "
        f"{'ipc':>5} {'llcB/edge':>9} {'wall_ms':>9}  top frames"
    )
    for phase in phases[:max_rows]:
        ipc = phase.get("ipc")
        llc = phase.get("llc_bytes_per_edge")
        lines.append(
            "{:<{width}}  {:>8} {:>6.1f} {:>8} {:>5} {:>9} {:>9.1f}  {}".format(
                phase_label(phase),
                _fmt_count(phase.get("samples", 0)),
                phase.get("samples_pct", 0.0),
                _fmt_count(phase.get("cycles", 0)),
                f"{ipc:.2f}" if ipc is not None else "-",
                f"{llc:.1f}" if llc is not None else "-",
                phase.get("wall_ms", 0.0),
                " | ".join(phase.get("top_frames", [])),
                width=width,
            )
        )
    if len(phases) > max_rows:
        lines.append(f"... {len(phases) - max_rows} more phase(s)")
    return "\n".join(lines)


def diff_phases(base_phases, cand_phases):
    """Per-phase deltas, worst (most-regressed) first.

    Returns a list of dicts with the candidate row's identity plus
    delta_cycles / delta_samples / delta_wall_ms. Phases present in
    only one profile diff against zero. Phases with no delta at all
    are omitted, so a self-diff returns [].
    """
    def by_key(phases):
        return {
            (p["variant"], p["level"], p["direction"]): p for p in phases
        }

    base, cand = by_key(base_phases), by_key(cand_phases)
    deltas = []
    for key in sorted(set(base) | set(cand), key=str):
        b = base.get(key, {})
        c = cand.get(key, {})
        delta = {
            "variant": key[0],
            "level": key[1],
            "direction": key[2],
            "delta_cycles": c.get("cycles", 0) - b.get("cycles", 0),
            "delta_samples": c.get("samples", 0) - b.get("samples", 0),
            "delta_wall_ms": c.get("wall_ms", 0.0) - b.get("wall_ms", 0.0),
            "top_frames": c.get("top_frames", b.get("top_frames", [])),
        }
        if (
            delta["delta_cycles"] == 0
            and delta["delta_samples"] == 0
            and abs(delta["delta_wall_ms"]) < 1e-9
        ):
            continue
        deltas.append(delta)
    deltas.sort(
        key=lambda d: (
            -d["delta_cycles"],
            -d["delta_samples"],
            -d["delta_wall_ms"],
        )
    )
    return deltas


def diff_report(base_phases, cand_phases, max_rows=10):
    """Human-readable phase-delta table; names the worst phase first."""
    deltas = diff_phases(base_phases, cand_phases)
    if not deltas:
        return "no phase deltas between the two profiles"
    width = max(len(phase_label(d)) for d in deltas[:max_rows])
    width = max(width, len("phase"))
    lines = [
        f"{'phase':<{width}}  {'d_cycles':>10} {'d_samples':>10} "
        f"{'d_wall_ms':>10}  top frames"
    ]
    for delta in deltas[:max_rows]:
        lines.append(
            "{:<{width}}  {:>+10} {:>+10} {:>+10.1f}  {}".format(
                phase_label(delta),
                delta["delta_cycles"],
                delta["delta_samples"],
                delta["delta_wall_ms"],
                " | ".join(delta["top_frames"]),
                width=width,
            )
        )
    if len(deltas) > max_rows:
        lines.append(f"... {len(deltas) - max_rows} more phase(s)")
    worst = deltas[0]
    lines.append(
        "worst phase: {} ({:+} cycles, {:+} samples); frames: {}".format(
            phase_label(worst),
            worst["delta_cycles"],
            worst["delta_samples"],
            " | ".join(worst["top_frames"]) or "(none)",
        )
    )
    return "\n".join(lines)


def report_regression(baseline_path, candidate_path):
    """bench_compare.py hook: the phase-delta report for a gated
    regression, or a one-line explanation when profiles are missing."""
    try:
        base_phases, _ = load_phases(baseline_path)
        cand_phases, _ = load_phases(candidate_path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        return f"phase attribution unavailable: {error}"
    return diff_report(base_phases, cand_phases)


def main():
    parser = argparse.ArgumentParser(
        description="Per-phase perf attribution from BENCH_*.json or "
        "folded-stack profiles; with two inputs, a phase-delta diff."
    )
    parser.add_argument("profile", help="BENCH_*.json or folded-stack file")
    parser.add_argument(
        "candidate",
        nargs="?",
        help="second profile to diff against the first (first = baseline)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=12, help="rows to print (default 12)"
    )
    args = parser.parse_args()

    try:
        phases, sampler = load_phases(args.profile)
        if args.candidate is None:
            print(report(phases, sampler, args.max_rows))
            return 0
        cand_phases, _ = load_phases(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(diff_report(phases, cand_phases, args.max_rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
