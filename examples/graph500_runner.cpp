// Graph500-style benchmark runner: generates the benchmark's Kronecker
// graph, runs BFS from 64 random sources (the benchmark's kernel 2),
// validates every result with the Graph500 rules, and reports harmonic-
// mean-style GTEPS — the workload the paper's evaluation is built
// around.
//
//   ./graph500_runner [--scale N] [--threads T] [--algorithm sms|ms]

#include <algorithm>
#include <cstdio>
#include <string>

#include "bfs/gteps.h"
#include "bfs/multi_source.h"
#include "bfs/single_source.h"
#include "bfs/validate.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/labeling.h"
#include "graph/parallel_build.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t scale = 14;
  int64_t edge_factor = 16;
  int64_t threads = 4;
  int64_t num_sources = 64;
  std::string algorithm = "ms";  // "ms" = MS-PBFS batch, "sms" = SMS-PBFS
  pbfs::FlagParser flags("Graph500-style BFS benchmark with validation");
  flags.AddInt64("scale", &scale, "Kronecker scale");
  flags.AddInt64("edge_factor", &edge_factor, "edges per vertex");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.AddInt64("sources", &num_sources, "BFS roots (Graph500: 64)");
  flags.AddString("algorithm", &algorithm,
                  "\"ms\" (MS-PBFS, one batch) or \"sms\" (SMS-PBFS)");
  flags.Parse(argc, argv);

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});

  // Kernel 1: graph construction (edge generation + parallel CSR build
  // + striped relabeling).
  pbfs::Timer timer;
  std::vector<pbfs::Edge> edge_list = pbfs::KroneckerEdges(
      {.scale = static_cast<int>(scale),
       .edge_factor = static_cast<int>(edge_factor),
       .seed = 1});
  pbfs::Graph raw = pbfs::BuildGraphParallel(
      pbfs::Vertex{1} << scale, edge_list, &pool);
  std::vector<pbfs::Edge>().swap(edge_list);
  std::vector<pbfs::Vertex> perm = pbfs::ComputeLabeling(
      raw, pbfs::Labeling::kStriped,
      {.num_workers = static_cast<int>(threads), .split_size = 1024});
  pbfs::Graph graph = pbfs::ApplyLabeling(raw, perm);
  std::printf("kernel 1 (construction): %.2f s — %u vertices, %llu edges\n",
              timer.ElapsedSeconds(), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  std::vector<pbfs::Vertex> sources =
      pbfs::PickSources(graph, static_cast<int>(num_sources), 2);

  // Kernel 2: BFS + validation.
  const pbfs::Vertex n = graph.num_vertices();
  std::vector<pbfs::Level> levels;
  int validated = 0;
  double seconds = 0;

  std::vector<double> per_source_teps;
  if (algorithm == "sms") {
    auto bfs = pbfs::MakeSmsPbfs(graph, pbfs::SmsVariant::kBit, &pool);
    levels.resize(n);
    for (pbfs::Vertex s : sources) {
      timer.Restart();
      bfs->Run(s, pbfs::BfsOptions{}, levels.data());
      double bfs_seconds = timer.ElapsedSeconds();
      seconds += bfs_seconds;
      pbfs::Vertex one_source[] = {s};
      per_source_teps.push_back(static_cast<double>(pbfs::TraversedEdges(
                                    components, one_source)) /
                                std::max(bfs_seconds, 1e-12));
      std::string error;
      if (!pbfs::ValidateLevels(graph, s, levels.data(), &components,
                                &error)) {
        std::printf("VALIDATION FAILED for source %u: %s\n", s,
                    error.c_str());
        return 1;
      }
      ++validated;
    }
  } else {
    auto bfs = pbfs::MakeMsPbfs(graph, 64, &pool);
    levels.resize(sources.size() * static_cast<size_t>(n));
    timer.Restart();
    bfs->Run(sources, pbfs::BfsOptions{}, levels.data());
    seconds = timer.ElapsedSeconds();
    for (size_t i = 0; i < sources.size(); ++i) {
      std::string error;
      if (!pbfs::ValidateLevels(graph, sources[i],
                                levels.data() + i * n, &components,
                                &error)) {
        std::printf("VALIDATION FAILED for source %u: %s\n", sources[i],
                    error.c_str());
        return 1;
      }
      ++validated;
    }
  }

  uint64_t edges = pbfs::TraversedEdges(components, sources);
  std::printf("kernel 2 (%s): %d/%zu BFS results validated\n",
              algorithm.c_str(), validated, sources.size());
  std::printf("BFS time %.4f s over %llu traversed edges -> %.3f GTEPS\n",
              seconds, static_cast<unsigned long long>(edges),
              pbfs::Gteps(edges, seconds));

  // Graph500-style per-BFS TEPS statistics (single-source mode only).
  if (!per_source_teps.empty()) {
    std::sort(per_source_teps.begin(), per_source_teps.end());
    auto quantile = [&](double q) {
      size_t i = static_cast<size_t>(q * (per_source_teps.size() - 1));
      return per_source_teps[i];
    };
    double harmonic_denominator = 0;
    for (double teps : per_source_teps) harmonic_denominator += 1.0 / teps;
    double harmonic_mean =
        static_cast<double>(per_source_teps.size()) / harmonic_denominator;
    std::printf("per-BFS TEPS: min %.3g, q1 %.3g, median %.3g, q3 %.3g, "
                "max %.3g, harmonic mean %.3g\n",
                quantile(0.0), quantile(0.25), quantile(0.5),
                quantile(0.75), quantile(1.0), harmonic_mean);
  }
  return 0;
}
