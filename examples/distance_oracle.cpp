// Landmark distance oracle: build a compact index with one multi-source
// BFS pass, then answer point-to-point hop-distance queries without any
// further traversal — and measure the oracle's accuracy against exact
// BFS distances.
//
//   ./distance_oracle [--vertices_log2 N] [--landmarks K] [--queries Q]

#include <cstdio>

#include "algorithms/landmarks.h"
#include "bfs/sequential.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t vertices_log2 = 14;
  int64_t landmarks = 16;
  int64_t queries = 2000;
  int64_t threads = 4;
  pbfs::FlagParser flags("Landmark distance oracle via MS-PBFS");
  flags.AddInt64("vertices_log2", &vertices_log2, "log2 of graph size");
  flags.AddInt64("landmarks", &landmarks, "index size (BFS sources)");
  flags.AddInt64("queries", &queries, "random queries to evaluate");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.Parse(argc, argv);

  pbfs::Graph graph = pbfs::SocialNetwork({
      .num_vertices = pbfs::Vertex{1} << vertices_log2,
      .avg_degree = 14.0,
      .seed = 21,
  });
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  pbfs::Timer timer;
  pbfs::LandmarkIndex index = pbfs::LandmarkIndex::Build(
      graph, &pool, {.num_landmarks = static_cast<int>(landmarks)});
  std::printf("index: %d landmarks, %.1f MB, built in %.1f ms "
              "(one MS-PBFS batch per 64 landmarks)\n",
              index.num_landmarks(),
              static_cast<double>(index.IndexBytes()) / (1024.0 * 1024.0),
              timer.ElapsedMillis());

  // Evaluate random queries against exact BFS distances.
  pbfs::Rng rng(3);
  std::vector<pbfs::Level> truth(graph.num_vertices());
  uint64_t exact = 0;
  uint64_t within_one = 0;
  uint64_t answered = 0;
  double query_ns = 0;
  for (int64_t q = 0; q < queries; ++q) {
    pbfs::Vertex s =
        static_cast<pbfs::Vertex>(rng.NextBounded(graph.num_vertices()));
    pbfs::Vertex t =
        static_cast<pbfs::Vertex>(rng.NextBounded(graph.num_vertices()));
    timer.Restart();
    pbfs::DistanceBounds bounds = index.Query(s, t);
    query_ns += static_cast<double>(timer.ElapsedNanos());
    pbfs::SequentialBfs(graph, s, truth.data());
    if (truth[t] == pbfs::kLevelUnreached) continue;
    ++answered;
    if (bounds.upper == truth[t]) ++exact;
    if (bounds.upper <= truth[t] + 1) ++within_one;
  }
  std::printf("queries: %llu connected pairs, upper bound exact %.1f%%, "
              "within +1 hop %.1f%%, %.0f ns per query\n",
              static_cast<unsigned long long>(answered),
              100.0 * exact / answered, 100.0 * within_one / answered,
              query_ns / queries);
  return 0;
}
