// Reachability / neighborhood analytics over an edge-list file — the
// "graph database query" use case from the paper's introduction.
//
// Loads a text edge list (or generates a demo graph when no file is
// given), then answers:
//   * connected-component statistics,
//   * k-hop neighborhood sizes around the highest-degree vertices
//     (computed with one MS-PBFS batch), and
//   * pairwise hop distances between those hub vertices.
//
//   ./reachability [--input edges.txt] [--threads T] [--hops K]

#include <algorithm>
#include <cstdio>
#include <string>

#include "bfs/multi_source.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/labeling.h"
#include "sched/worker_pool.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  std::string input;
  int64_t threads = 4;
  int64_t hops = 3;
  int64_t hubs = 8;
  pbfs::FlagParser flags("Reachability analytics over an edge list");
  flags.AddString("input", &input,
                  "text edge list (\"u v\" per line); demo graph if empty");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.AddInt64("hops", &hops, "neighborhood radius to report");
  flags.AddInt64("hubs", &hubs, "number of hub vertices to analyze");
  flags.Parse(argc, argv);

  pbfs::Graph graph;
  if (input.empty()) {
    std::printf("no --input given; generating a demo social network\n");
    graph = pbfs::SocialNetwork({.num_vertices = 1 << 14,
                                 .avg_degree = 18.0, .seed = 9});
  } else {
    std::vector<pbfs::Edge> edges;
    pbfs::Vertex n = 0;
    if (!pbfs::ReadEdgeListText(input, &edges, &n, /*renumber=*/true)) {
      std::fprintf(stderr, "failed to read %s\n", input.c_str());
      return 1;
    }
    graph = pbfs::Graph::FromEdges(n, edges);
  }
  std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              static_cast<unsigned long long>(graph.MaxDegree()));

  // Component statistics.
  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  uint32_t largest = components.LargestComponent();
  std::printf("%u connected components; largest has %u vertices "
              "(%.1f%%) and %llu edges\n",
              components.num_components(),
              components.vertex_count[largest],
              100.0 * components.vertex_count[largest] /
                  graph.num_vertices(),
              static_cast<unsigned long long>(
                  components.edge_count[largest]));

  // Hub vertices: highest degree.
  std::vector<pbfs::Vertex> order =
      pbfs::VerticesByDegreeDescending(graph);
  std::vector<pbfs::Vertex> sources(
      order.begin(),
      order.begin() + std::min<size_t>(hubs, order.size()));

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  auto ms = pbfs::MakeMsPbfs(graph, 64, &pool);
  const pbfs::Vertex n = graph.num_vertices();
  std::vector<pbfs::Level> levels(sources.size() * static_cast<size_t>(n));
  ms->Run(sources, pbfs::BfsOptions{}, levels.data());

  // k-hop neighborhood sizes per hub.
  std::printf("\nk-hop neighborhood sizes (radius %lld):\n",
              static_cast<long long>(hops));
  for (size_t i = 0; i < sources.size(); ++i) {
    const pbfs::Level* row = levels.data() + i * n;
    std::vector<uint64_t> within(hops + 1, 0);
    for (pbfs::Vertex v = 0; v < n; ++v) {
      if (row[v] == pbfs::kLevelUnreached) continue;
      for (int64_t h = row[v]; h <= hops; ++h) ++within[h];
    }
    std::printf("  hub %u (degree %llu):", sources[i],
                static_cast<unsigned long long>(graph.Degree(sources[i])));
    for (int64_t h = 1; h <= hops; ++h) {
      std::printf(" %lld-hop=%llu", static_cast<long long>(h),
                  static_cast<unsigned long long>(within[h]));
    }
    std::printf("\n");
  }

  // Pairwise hop distances between the hubs (read off the same levels).
  std::printf("\npairwise hub distances (hops):\n      ");
  for (pbfs::Vertex t : sources) std::printf("%7u", t);
  std::printf("\n");
  for (size_t i = 0; i < sources.size(); ++i) {
    std::printf("%6u", sources[i]);
    const pbfs::Level* row = levels.data() + i * n;
    for (pbfs::Vertex t : sources) {
      if (row[t] == pbfs::kLevelUnreached) {
        std::printf("%7s", "-");
      } else {
        std::printf("%7u", row[t]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
