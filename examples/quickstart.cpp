// Quickstart: build a graph, run a parallel single-source BFS
// (SMS-PBFS) and a 64-source parallel multi-source BFS (MS-PBFS), and
// print distances and throughput.
//
//   ./quickstart [--scale N] [--threads T]

#include <cstdio>

#include "bfs/gteps.h"
#include "bfs/multi_source.h"
#include "bfs/single_source.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/labeling.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t scale = 14;
  int64_t threads = 4;
  pbfs::FlagParser flags("pbfs quickstart");
  flags.AddInt64("scale", &scale, "Kronecker graph scale (2^scale vertices)");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.Parse(argc, argv);

  // 1. Generate a Graph500-style Kronecker graph and relabel it with the
  //    paper's striped vertex labeling for balanced parallel work.
  pbfs::Graph raw = pbfs::Kronecker({.scale = static_cast<int>(scale),
                                     .edge_factor = 16, .seed = 1});
  std::vector<pbfs::Vertex> perm = pbfs::ComputeLabeling(
      raw, pbfs::Labeling::kStriped,
      {.num_workers = static_cast<int>(threads), .split_size = 1024});
  pbfs::Graph graph = pbfs::ApplyLabeling(raw, perm);
  std::printf("graph: %u vertices, %llu undirected edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Create a worker pool; all traversals share it.
  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});

  // 3. Single-source BFS from vertex 0 with per-vertex distances.
  auto sms = pbfs::MakeSmsPbfs(graph, pbfs::SmsVariant::kBit, &pool);
  std::vector<pbfs::Level> levels(graph.num_vertices());
  pbfs::Timer timer;
  pbfs::BfsResult result = sms->Run(0, pbfs::BfsOptions{}, levels.data());
  std::printf("SMS-PBFS from vertex 0: visited %llu vertices in %d "
              "iterations (%.2f ms)\n",
              static_cast<unsigned long long>(result.vertices_visited),
              result.iterations, timer.ElapsedMillis());

  // Distance histogram.
  std::vector<uint64_t> histogram;
  for (pbfs::Level l : levels) {
    if (l == pbfs::kLevelUnreached) continue;
    if (histogram.size() <= l) histogram.resize(l + 1, 0);
    ++histogram[l];
  }
  for (size_t d = 0; d < histogram.size(); ++d) {
    std::printf("  distance %zu: %llu vertices\n", d,
                static_cast<unsigned long long>(histogram[d]));
  }

  // 4. Multi-source BFS: 64 concurrent BFSs in one pass over the graph.
  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  std::vector<pbfs::Vertex> sources = pbfs::PickSources(graph, 64, 7);
  auto ms = pbfs::MakeMsPbfs(graph, /*width=*/64, &pool);
  timer.Restart();
  pbfs::MsBfsResult batch = ms->Run(sources, pbfs::BfsOptions{}, nullptr);
  double seconds = timer.ElapsedSeconds();
  uint64_t edges = pbfs::TraversedEdges(components, sources);
  std::printf("MS-PBFS, 64 sources in one batch: %llu total visits, "
              "%.2f ms, %.2f GTEPS\n",
              static_cast<unsigned long long>(batch.total_visits),
              seconds * 1000.0, pbfs::Gteps(edges, seconds));
  return 0;
}
