// Closeness centrality — the all-pairs-shortest-path workload that
// motivates multi-source BFS in the paper's introduction.
//
// Uses the library's ComputeCloseness (exact, one MS-PBFS batch per 64
// sources), prints the top-k central vertices, and compares the runtime
// against the single-source approach.
//
//   ./closeness_centrality [--vertices_log2 N] [--threads T] [--topk K]
//                          [--sample S]

#include <algorithm>
#include <cstdio>

#include "algorithms/closeness.h"
#include "bfs/single_source.h"
#include "graph/generators.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t vertices_log2 = 12;
  int64_t threads = 4;
  int64_t topk = 10;
  int64_t sample = 0;
  bool compare_single_source = true;
  pbfs::FlagParser flags("Exact closeness centrality via MS-PBFS");
  flags.AddInt64("vertices_log2", &vertices_log2,
                 "log2 of social-network size");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.AddInt64("topk", &topk, "how many central vertices to print");
  flags.AddInt64("sample", &sample,
                 "0 = exact; otherwise sampled source count");
  flags.AddBool("compare_single_source", &compare_single_source,
                "also time the single-source approach");
  flags.Parse(argc, argv);

  pbfs::Graph graph = pbfs::SocialNetwork({
      .num_vertices = pbfs::Vertex{1} << vertices_log2,
      .avg_degree = 16.0,
      .seed = 42,
  });
  const pbfs::Vertex n = graph.num_vertices();
  std::printf("social network: %u vertices, %llu edges\n", n,
              static_cast<unsigned long long>(graph.num_edges()));

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});

  pbfs::ClosenessOptions options;
  options.sample_sources = static_cast<pbfs::Vertex>(sample);
  pbfs::Timer timer;
  pbfs::ClosenessResult result =
      pbfs::ComputeCloseness(graph, &pool, options);
  double ms_seconds = timer.ElapsedSeconds();
  std::printf("%s closeness over %u sources (MS-PBFS batches of 64): "
              "%.2f s\n",
              sample == 0 ? "exact" : "sampled", result.sources_used,
              ms_seconds);

  std::printf("top-%lld closeness centrality:\n",
              static_cast<long long>(topk));
  std::vector<pbfs::Vertex> top =
      pbfs::TopKByScore(result.score, static_cast<int>(topk));
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  #%zu vertex %u (degree %llu): %.6f\n", i + 1, top[i],
                static_cast<unsigned long long>(graph.Degree(top[i])),
                result.score[top[i]]);
  }

  if (compare_single_source) {
    // Same distance computations with one BFS per source, extrapolated
    // from a sample so the demo stays fast.
    auto sms = pbfs::MakeSmsPbfs(graph, pbfs::SmsVariant::kBit, &pool);
    const int probe = static_cast<int>(std::min<pbfs::Vertex>(n, 256));
    std::vector<pbfs::Level> row(n);
    timer.Restart();
    for (int i = 0; i < probe; ++i) {
      sms->Run(static_cast<pbfs::Vertex>(i), pbfs::BfsOptions{}, row.data());
    }
    double per_source = timer.ElapsedSeconds() / probe;
    std::printf(
        "single-source SMS-PBFS: %.3f ms per source -> est. %.2f s for all "
        "%u sources (%.1fx the multi-source time)\n",
        per_source * 1000.0, per_source * result.sources_used,
        result.sources_used,
        per_source * result.sources_used / ms_seconds);
  }
  return 0;
}
