// Multi-threaded client simulation against the concurrent query
// engine: N client threads each fire a mixed stream of typed BFS
// queries (levels / distances / reachability / k-hop) at
// QueryEngine::Submit and wait for their futures, the way a server
// front-end would. Prints per-type counts, end-to-end throughput, and
// the engine's stats dump (batch occupancy, coalesce wait).
//
//   ./engine_server_demo [--vertices_log2 16] [--clients 8]
//                        [--queries_per_client 64] [--threads N]

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "obs/obs_cli.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  int64_t vertices_log2 = 16;
  int64_t clients = 8;
  int64_t queries_per_client = 64;
  int64_t threads = 4;
  pbfs::FlagParser flags(
      "Concurrent BFS query engine demo: multi-threaded clients, "
      "coalesced MS-PBFS batches");
  flags.AddInt64("vertices_log2", &vertices_log2, "log2 of graph size");
  flags.AddInt64("clients", &clients, "client threads");
  flags.AddInt64("queries_per_client", &queries_per_client,
                 "queries submitted by each client");
  flags.AddInt64("threads", &threads, "BFS worker threads");
  pbfs::obs::ObsCli obs_cli("engine_server_demo");
  obs_cli.Register(&flags);
  flags.Parse(argc, argv);
  obs_cli.Start();

  pbfs::Graph graph = pbfs::SocialNetwork({
      .num_vertices = pbfs::Vertex{1} << vertices_log2,
      .avg_degree = 12.0,
      .seed = 5,
  });
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  obs_cli.AuditPlacement(graph, &pool, pbfs::BfsOptions{}.split_size);
  pbfs::QueryEngine engine(graph, &pool);

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> reached_sum{0};
  pbfs::Timer timer;
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      pbfs::Rng rng(static_cast<uint64_t>(c) + 1);
      const pbfs::Vertex n = graph.num_vertices();
      for (int64_t q = 0; q < queries_per_client; ++q) {
        pbfs::Query query;
        query.source = static_cast<pbfs::Vertex>(rng.NextBounded(n));
        switch (rng.NextBounded(4)) {
          case 0:
            query.type = pbfs::QueryType::kLevels;
            break;
          case 1:
            query.type = pbfs::QueryType::kDistances;
            for (int t = 0; t < 4; ++t) {
              query.targets.push_back(
                  static_cast<pbfs::Vertex>(rng.NextBounded(n)));
            }
            break;
          case 2:
            query.type = pbfs::QueryType::kReachability;
            query.targets.push_back(
                static_cast<pbfs::Vertex>(rng.NextBounded(n)));
            break;
          default:
            query.type = pbfs::QueryType::kKHop;
            query.max_hops = 3;
            break;
        }
        auto sub = engine.Submit(std::move(query));
        pbfs::QueryResult result = sub.result.get();
        if (result.status == pbfs::QueryStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
          reached_sum.fetch_add(result.vertices_reached,
                                std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double elapsed_s = timer.ElapsedSeconds();
  // Settle the dispatcher's post-batch bookkeeping so the stats (and
  // the trace's terminal events) cover every submitted query.
  engine.Drain();

  const uint64_t total =
      static_cast<uint64_t>(clients) * static_cast<uint64_t>(queries_per_client);
  std::printf("%lld clients x %lld queries: %llu ok in %.3f s "
              "(%.1f queries/s end-to-end)\n",
              static_cast<long long>(clients),
              static_cast<long long>(queries_per_client),
              static_cast<unsigned long long>(ok.load()), elapsed_s,
              static_cast<double>(total) / elapsed_s);
  std::printf("engine stats: %s\n", engine.Stats().ToString().c_str());
  obs_cli.json().Add("clients", clients);
  obs_cli.json().Add("queries_per_client", queries_per_client);
  obs_cli.json().Add("queries_ok", ok.load());
  obs_cli.json().Add("queries_per_s", static_cast<double>(total) / elapsed_s);
  obs_cli.Finish();
  return 0;
}
