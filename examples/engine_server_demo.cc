// Multi-threaded client simulation against the concurrent query
// engine: N client threads each fire a mixed stream of typed BFS
// queries (levels / distances / reachability / k-hop) at
// QueryEngine::Submit and wait for their futures, the way a server
// front-end would. Prints per-type counts, end-to-end throughput, and
// the engine's stats dump (batch occupancy, coalesce wait).
//
// Two modes:
//  * One-shot (default): each client submits --queries_per_client
//    queries and exits.
//  * Server (--run-seconds > 0): clients loop, sustaining a mixed
//    workload until the time is up or a SIGINT/SIGTERM arrives. With
//    --serve-metrics=PORT the live telemetry endpoints (/metrics,
//    /healthz, /debug/trace) and the stall watchdog run alongside;
//    scrape while it runs. Shutdown is graceful either way: stop
//    admitting, drain the engine, flush the final metrics/trace
//    outputs, then stop the metrics server.
//
// --inject-slow-query-ms=N submits one artificially slow query
// (Query::debug_delay_ms) after startup so the watchdog's slow-query
// report and flight-recorder dump can be exercised end-to-end.
//
// --churn-edges-per-sec=N runs an updater thread alongside the clients,
// publishing batched edge inserts/deletes through ApplyUpdates() at
// roughly that rate — the dynamic-graph smoke workload: queries resolve
// against admission-time snapshots while the background compactor folds
// the churn back into flat CSRs (see docs/dynamic.md).
//
// --sketch-clusters=N enables the Cluster-BFS distance sketches with N
// clusters and mixes point-to-point distance queries into the client
// streams; sketch-resolvable ones answer inline without a batch slot
// (pbfs_sketch_* series on /metrics; see docs/sketches.md).
//
// --listen-port=P serves the length-prefixed binary TCP protocol on
// 127.0.0.1:P (0 picks an ephemeral port) with session FSMs and
// deadline-aware admission in front of the engine, and drives the
// client threads over real sockets (server::PbfsClient) instead of
// direct Submit calls — the full network path, including shedding
// under overload (kShed responses and pbfs_server_* metrics on
// /metrics when --serve-metrics is also given). See docs/server.md.
//
//   ./engine_server_demo [--vertices_log2 16] [--clients 8]
//                        [--queries_per_client 64] [--threads N]
//                        [--run-seconds 0] [--serve-metrics PORT]
//                        [--inject-slow-query-ms 0]
//                        [--churn-edges-per-sec 0] [--sketch-clusters 0]
//                        [--listen-port -1]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "obs/obs_cli.h"
#include "sched/worker_pool.h"
#include "server/client.h"
#include "server/server.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// Written by the signal handler, polled by the client loops. A plain
// lock-free atomic store is async-signal-safe.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

pbfs::Query RandomQuery(pbfs::Rng& rng, pbfs::Vertex n, bool sketches) {
  pbfs::Query query;
  query.source = static_cast<pbfs::Vertex>(rng.NextBounded(n));
  switch (rng.NextBounded(sketches ? 5 : 4)) {
    case 0:
      query.type = pbfs::QueryType::kLevels;
      break;
    case 1:
      query.type = pbfs::QueryType::kDistances;
      for (int t = 0; t < 4; ++t) {
        query.targets.push_back(
            static_cast<pbfs::Vertex>(rng.NextBounded(n)));
      }
      break;
    case 2:
      query.type = pbfs::QueryType::kReachability;
      query.targets.push_back(static_cast<pbfs::Vertex>(rng.NextBounded(n)));
      break;
    case 3:
      query.type = pbfs::QueryType::kKHop;
      query.max_hops = 3;
      break;
    default:
      // Point-to-point distance with a loose tolerance: most pairs on
      // the hub-heavy social graph resolve from the sketch inline.
      query.type = pbfs::QueryType::kPointToPointDistance;
      query.targets.push_back(static_cast<pbfs::Vertex>(rng.NextBounded(n)));
      query.tolerance = static_cast<pbfs::Level>(rng.NextBounded(4));
      break;
  }
  return query;
}

// The same random workload, as a wire-protocol request.
pbfs::server::QueryRequest WireRequest(const pbfs::Query& query,
                                       uint64_t request_id) {
  pbfs::server::QueryRequest req;
  req.request_id = request_id;
  req.type = query.type;
  req.source = query.source;
  req.targets = query.targets;
  req.max_hops = query.max_hops;
  req.tolerance = query.tolerance;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t vertices_log2 = 16;
  int64_t clients = 8;
  int64_t queries_per_client = 64;
  int64_t threads = 4;
  double run_seconds = 0;
  double inject_slow_query_ms = 0;
  int64_t churn_edges_per_sec = 0;
  int64_t sketch_clusters = 0;
  int64_t listen_port = -1;
  pbfs::FlagParser flags(
      "Concurrent BFS query engine demo: multi-threaded clients, "
      "coalesced MS-PBFS batches, optional live telemetry server");
  flags.AddInt64("vertices_log2", &vertices_log2, "log2 of graph size");
  flags.AddInt64("clients", &clients, "client threads");
  flags.AddInt64("queries_per_client", &queries_per_client,
                 "queries submitted by each client (one-shot mode)");
  flags.AddInt64("threads", &threads, "BFS worker threads");
  flags.AddDouble("run-seconds", &run_seconds,
                  "sustain the workload this long instead of a fixed "
                  "query count (0 = one-shot); SIGINT/SIGTERM ends early");
  flags.AddDouble("inject-slow-query-ms", &inject_slow_query_ms,
                  "submit one artificially slow query to trip the "
                  "watchdog (0 = none)");
  flags.AddInt64("churn-edges-per-sec", &churn_edges_per_sec,
                 "publish ~this many edge updates per second through "
                 "ApplyUpdates while the workload runs (0 = static)");
  flags.AddInt64("sketch-clusters", &sketch_clusters,
                 "enable Cluster-BFS distance sketches with this many "
                 "clusters and mix point-to-point distance queries into "
                 "the client streams (0 = disabled)");
  flags.AddInt64("listen-port", &listen_port,
                 "serve the binary TCP protocol on this loopback port "
                 "(0 = ephemeral) and run the clients over real sockets "
                 "(-1 = in-process Submit)");
  pbfs::obs::ObsCli obs_cli("engine_server_demo");
  obs_cli.Register(&flags);
  flags.Parse(argc, argv);
  obs_cli.Start();

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  pbfs::Graph graph = pbfs::SocialNetwork({
      .num_vertices = pbfs::Vertex{1} << vertices_log2,
      .avg_degree = 12.0,
      .seed = 5,
  });
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  obs_cli.AuditPlacement(graph, &pool, pbfs::BfsOptions{}.split_size);
  pbfs::QueryEngineOptions engine_options;
  if (sketch_clusters > 0) {
    engine_options.enable_sketches = true;
    engine_options.sketch.num_clusters = static_cast<int>(sketch_clusters);
  }
  pbfs::QueryEngine engine(graph, &pool, engine_options);
  obs_cli.WatchPool(&pool);
  obs_cli.WatchEngine(&engine);
  if (sketch_clusters > 0) {
    // Serve from a warm sketch so the very first p2p queries can hit.
    engine.WaitSketchIdle();
    const pbfs::SketchRebuilder::Stats sketch = engine.SketchStats();
    std::printf("sketch: %lld clusters, %.1f MB, built in %.1f ms\n",
                static_cast<long long>(sketch_clusters),
                static_cast<double>(sketch.sketch_bytes) / 1e6,
                sketch.last_build_ms);
  }

  // Network front-end (--listen-port >= 0): session FSMs + admission
  // in front of the same engine, clients over real loopback sockets.
  std::unique_ptr<pbfs::server::PbfsServer> server;
  if (listen_port >= 0) {
    pbfs::server::ServerOptions server_options;
    server_options.port = static_cast<int>(listen_port);
    server = std::make_unique<pbfs::server::PbfsServer>(&engine,
                                                        server_options);
    if (!server->Start()) {
      std::fprintf(stderr, "failed to listen on port %lld\n",
                   static_cast<long long>(listen_port));
      return 1;
    }
    obs_cli.WatchServer(server.get());
    std::printf("listening on 127.0.0.1:%d (binary frame protocol)\n",
                server->port());
  }

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> reached_sum{0};
  pbfs::Timer timer;
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      pbfs::Rng rng(static_cast<uint64_t>(c) + 1);
      const pbfs::Vertex n = graph.num_vertices();
      pbfs::server::PbfsClient net_client;
      if (server != nullptr &&
          !net_client.Connect({.port = server->port()})) {
        std::fprintf(stderr, "client %lld: connect failed\n",
                     static_cast<long long>(c));
        return;
      }
      for (int64_t q = 0;; ++q) {
        if (g_stop.load(std::memory_order_relaxed)) break;
        if (run_seconds > 0) {
          if (timer.ElapsedSeconds() >= run_seconds) break;
        } else if (q >= queries_per_client) {
          break;
        }
        pbfs::Query query = RandomQuery(rng, n, sketch_clusters > 0);
        if (server != nullptr) {
          // Over the wire: encode, round-trip, decode. Overload comes
          // back as a kShed response instead of queueing.
          pbfs::server::QueryResponse resp;
          std::string error;
          if (!net_client.Call(
                  WireRequest(query, static_cast<uint64_t>(q) + 1), &resp,
                  &error)) {
            std::fprintf(stderr, "client %lld: %s\n",
                         static_cast<long long>(c), error.c_str());
            break;
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
          if (resp.status == pbfs::QueryStatus::kOk) {
            ok.fetch_add(1, std::memory_order_relaxed);
            reached_sum.fetch_add(resp.vertices_reached,
                                  std::memory_order_relaxed);
          } else if (resp.status == pbfs::QueryStatus::kShed) {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        auto sub = engine.Submit(std::move(query));
        submitted.fetch_add(1, std::memory_order_relaxed);
        pbfs::QueryResult result = sub.result.get();
        if (result.status == pbfs::QueryStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
          reached_sum.fetch_add(result.vertices_reached,
                                std::memory_order_relaxed);
        }
      }
    });
  }

  // Edge churn: one updater thread publishes small batches at a steady
  // rate. Inserted edges are remembered so about half of later updates
  // delete a genuinely present edge — real churn, not no-ops. The
  // background compactor folds the overlay away continuously; queries
  // keep answering from their admission-time snapshots throughout.
  std::atomic<bool> churn_stop{false};
  std::thread churn_thread;
  if (churn_edges_per_sec > 0) {
    churn_thread = std::thread([&] {
      pbfs::Rng rng(99);
      const pbfs::Vertex n = graph.num_vertices();
      const int64_t batch_size = std::max<int64_t>(1, churn_edges_per_sec / 20);
      std::deque<pbfs::EdgeUpdate> inserted;
      while (!churn_stop.load(std::memory_order_relaxed)) {
        std::vector<pbfs::EdgeUpdate> batch;
        batch.reserve(static_cast<size_t>(batch_size));
        for (int64_t i = 0; i < batch_size; ++i) {
          if (!inserted.empty() && rng.NextBounded(2) == 0) {
            pbfs::EdgeUpdate del = inserted.front();
            inserted.pop_front();
            del.insert = false;
            batch.push_back(del);
          } else {
            pbfs::Vertex u = static_cast<pbfs::Vertex>(rng.NextBounded(n));
            pbfs::Vertex v = static_cast<pbfs::Vertex>(rng.NextBounded(n));
            if (u == v) v = (v + 1) % n;
            pbfs::EdgeUpdate ins{u, v, /*insert=*/true};
            inserted.push_back(ins);
            batch.push_back(ins);
          }
        }
        engine.ApplyUpdates(batch);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  if (inject_slow_query_ms > 0) {
    // Let the workload warm up, then wedge the dispatcher once. The
    // watchdog (--watchdog / --serve-metrics) should emit exactly one
    // slow-query report and one flight-recorder dump for this.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pbfs::Query slow;
    slow.type = pbfs::QueryType::kLevels;
    slow.source = 0;
    slow.debug_delay_ms = inject_slow_query_ms;
    std::printf("injecting one slow query (%.0f ms)\n", inject_slow_query_ms);
    auto sub = engine.Submit(std::move(slow));
    submitted.fetch_add(1, std::memory_order_relaxed);
    sub.result.get();
  }

  for (std::thread& t : client_threads) t.join();
  const double elapsed_s = timer.ElapsedSeconds();
  if (server != nullptr) {
    const pbfs::server::ServerStats sstats = server->GetStats();
    std::printf("server: %llu sessions, %llu frames rx, %llu shed "
                "(%llu queue-full, %llu deadline), %llu backpressure "
                "pauses, %llu protocol errors\n",
                static_cast<unsigned long long>(sstats.sessions_opened),
                static_cast<unsigned long long>(sstats.frames_rx),
                static_cast<unsigned long long>(
                    sstats.admission.shed_queue_full +
                    sstats.admission.shed_deadline),
                static_cast<unsigned long long>(
                    sstats.admission.shed_queue_full),
                static_cast<unsigned long long>(
                    sstats.admission.shed_deadline),
                static_cast<unsigned long long>(sstats.backpressure_events),
                static_cast<unsigned long long>(sstats.protocol_errors));
    obs_cli.json().Add("server_sessions", sstats.sessions_opened);
    obs_cli.json().Add("server_shed",
                       sstats.admission.shed_queue_full +
                           sstats.admission.shed_deadline);
    obs_cli.json().Add("queries_shed", shed.load());
    server->Stop();  // withdraws its metrics collector
  }
  // Graceful shutdown, signal or not: stop the churn, let the
  // compactor fold the last deltas in, and drain what is in flight —
  // no new queries are being admitted (clients joined).
  if (churn_thread.joinable()) {
    churn_stop.store(true, std::memory_order_relaxed);
    churn_thread.join();
    engine.WaitCompactorIdle();
  }
  engine.Drain();

  const uint64_t total = submitted.load();
  std::printf("%lld clients, %llu queries: %llu ok in %.3f s "
              "(%.1f queries/s end-to-end)%s\n",
              static_cast<long long>(clients),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(ok.load()), elapsed_s,
              static_cast<double>(total) / elapsed_s,
              g_stop.load() ? " [stopped by signal]" : "");
  std::printf("engine stats: %s\n", engine.Stats().ToString().c_str());
  if (churn_edges_per_sec > 0) {
    const pbfs::QueryEngineStats stats = engine.Stats();
    const pbfs::SnapshotStats snap = engine.SnapshotInfo();
    const pbfs::Compactor::Stats compact = engine.CompactorStats();
    std::printf("churn: %llu batches, %llu edge updates, snapshot v%llu "
                "(content v%llu), %llu compactions\n",
                static_cast<unsigned long long>(stats.update_batches),
                static_cast<unsigned long long>(stats.edge_updates_applied),
                static_cast<unsigned long long>(snap.version),
                static_cast<unsigned long long>(snap.content_version),
                static_cast<unsigned long long>(compact.compactions));
    obs_cli.json().Add("update_batches", stats.update_batches);
    obs_cli.json().Add("edge_updates_applied", stats.edge_updates_applied);
    obs_cli.json().Add("snapshot_content_version", snap.content_version);
    obs_cli.json().Add("compactions", compact.compactions);
  }
  if (sketch_clusters > 0) {
    const pbfs::QueryEngineStats stats = engine.Stats();
    const pbfs::SketchRebuilder::Stats sketch = engine.SketchStats();
    std::printf("sketch: %llu hits, %llu fallbacks, %llu stale, "
                "%llu rebuilds (content v%llu)\n",
                static_cast<unsigned long long>(stats.sketch_hits),
                static_cast<unsigned long long>(stats.sketch_fallbacks),
                static_cast<unsigned long long>(stats.sketch_stale),
                static_cast<unsigned long long>(sketch.rebuilds),
                static_cast<unsigned long long>(sketch.content_version));
    obs_cli.json().Add("sketch_hits", stats.sketch_hits);
    obs_cli.json().Add("sketch_fallbacks", stats.sketch_fallbacks);
    obs_cli.json().Add("sketch_stale", stats.sketch_stale);
    obs_cli.json().Add("sketch_rebuilds", sketch.rebuilds);
    obs_cli.json().Add("sketch_bytes", sketch.sketch_bytes);
  }
  obs_cli.json().Add("clients", clients);
  obs_cli.json().Add("queries_submitted", total);
  obs_cli.json().Add("queries_ok", ok.load());
  obs_cli.json().Add("queries_per_s", static_cast<double>(total) / elapsed_s);
  obs_cli.json().AddBool("stopped_by_signal", g_stop.load());
  // ... then flush the final metrics/trace outputs and stop the
  // watchdog and metrics server (Finish does all of it, in that order,
  // before the engine and pool go out of scope).
  obs_cli.Finish();
  std::printf("shutdown complete\n");
  return 0;
}
