// pbfs_tool — command-line graph toolkit built entirely on the public
// API. Subcommands:
//
//   generate   synthesize a graph and save it (text or binary)
//   convert    convert between text edge lists and binary CSR snapshots
//   stats      structural report (degrees, components, diameter bound)
//   bfs        run one BFS and print the level histogram + GTEPS
//   centrality top-k closeness / harmonic / betweenness
//
// Examples:
//   pbfs_tool generate --kind kronecker --scale 18 --out g.pbfs
//   pbfs_tool convert --input edges.txt --out g.pbfs
//   pbfs_tool stats --input g.pbfs
//   pbfs_tool bfs --input g.pbfs --source 0 --threads 8
//   pbfs_tool centrality --input g.pbfs --metric harmonic --topk 20

#include <cstdio>
#include <cstring>
#include <string>

#include "algorithms/betweenness.h"
#include "algorithms/closeness.h"
#include "algorithms/eccentricity.h"
#include "bfs/gteps.h"
#include "bfs/single_source.h"
#include "graph/components.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/labeling.h"
#include "sched/worker_pool.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Loads a graph from either format, deciding by file suffix.
bool LoadGraph(const std::string& path, pbfs::Graph* graph) {
  if (HasSuffix(path, ".pbfs")) return pbfs::ReadGraphBinary(path, graph);
  std::vector<pbfs::Edge> edges;
  pbfs::Vertex n = 0;
  if (!pbfs::ReadEdgeListText(path, &edges, &n, /*renumber=*/true)) {
    return false;
  }
  *graph = pbfs::Graph::FromEdges(n, edges);
  return true;
}

bool SaveGraph(const std::string& path, const pbfs::Graph& graph) {
  if (HasSuffix(path, ".pbfs")) return pbfs::WriteGraphBinary(path, graph);
  std::vector<pbfs::Edge> edges;
  edges.reserve(graph.num_edges());
  for (pbfs::Vertex u = 0; u < graph.num_vertices(); ++u) {
    for (pbfs::Vertex v : graph.Neighbors(u)) {
      if (v > u) edges.push_back({u, v});
    }
  }
  return pbfs::WriteEdgeListText(path, edges);
}

int CmdGenerate(int argc, char** argv) {
  std::string kind = "kronecker";
  std::string out = "graph.pbfs";
  std::string relabel = "none";
  int64_t scale = 16;
  int64_t edge_factor = 16;
  int64_t vertices = 1 << 16;
  double avg_degree = 20.0;
  int64_t seed = 1;
  int64_t threads = 4;
  pbfs::FlagParser flags("pbfs_tool generate: synthesize a graph");
  flags.AddString("kind", &kind, "kronecker | social | erdos");
  flags.AddString("out", &out, "output path (.pbfs = binary, else text)");
  flags.AddString("relabel", &relabel, "none | random | ordered | striped");
  flags.AddInt64("scale", &scale, "kronecker: 2^scale vertices");
  flags.AddInt64("edge_factor", &edge_factor, "kronecker: edges per vertex");
  flags.AddInt64("vertices", &vertices, "social/erdos: vertex count");
  flags.AddDouble("avg_degree", &avg_degree, "social: average degree");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("threads", &threads, "stripe shape for --relabel=striped");
  flags.Parse(argc, argv);

  pbfs::Graph graph;
  if (kind == "kronecker") {
    graph = pbfs::Kronecker({.scale = static_cast<int>(scale),
                             .edge_factor = static_cast<int>(edge_factor),
                             .seed = static_cast<uint64_t>(seed)});
  } else if (kind == "social") {
    graph = pbfs::SocialNetwork(
        {.num_vertices = static_cast<pbfs::Vertex>(vertices),
         .avg_degree = avg_degree,
         .seed = static_cast<uint64_t>(seed)});
  } else if (kind == "erdos") {
    graph = pbfs::ErdosRenyi(
        static_cast<pbfs::Vertex>(vertices),
        static_cast<pbfs::EdgeIndex>(avg_degree * vertices / 2.0),
        static_cast<uint64_t>(seed));
  } else {
    std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
    return 1;
  }

  if (relabel != "none") {
    pbfs::Labeling labeling;
    if (relabel == "random") {
      labeling = pbfs::Labeling::kRandom;
    } else if (relabel == "ordered") {
      labeling = pbfs::Labeling::kDegreeOrdered;
    } else if (relabel == "striped") {
      labeling = pbfs::Labeling::kStriped;
    } else {
      std::fprintf(stderr, "unknown --relabel %s\n", relabel.c_str());
      return 1;
    }
    std::vector<pbfs::Vertex> perm = pbfs::ComputeLabeling(
        graph, labeling,
        {.num_workers = static_cast<int>(threads), .split_size = 1024},
        static_cast<uint64_t>(seed));
    graph = pbfs::ApplyLabeling(graph, perm);
  }

  if (!SaveGraph(out, graph)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdConvert(int argc, char** argv) {
  std::string input;
  std::string out;
  pbfs::FlagParser flags("pbfs_tool convert: change graph format");
  flags.AddString("input", &input, "input path");
  flags.AddString("out", &out, "output path (.pbfs = binary, else text)");
  flags.Parse(argc, argv);
  pbfs::Graph graph;
  if (!LoadGraph(input, &graph)) {
    std::fprintf(stderr, "failed to read %s\n", input.c_str());
    return 1;
  }
  if (!SaveGraph(out, graph)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("converted %s -> %s (%u vertices, %llu edges)\n", input.c_str(),
              out.c_str(), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdStats(int argc, char** argv) {
  std::string input;
  int64_t threads = 4;
  pbfs::FlagParser flags("pbfs_tool stats: structural report");
  flags.AddString("input", &input, "input path");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.Parse(argc, argv);
  pbfs::Graph graph;
  if (!LoadGraph(input, &graph)) {
    std::fprintf(stderr, "failed to read %s\n", input.c_str());
    return 1;
  }
  pbfs::DegreeStats degrees = pbfs::ComputeDegreeStats(graph);
  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  std::printf("%u vertices, %llu edges, avg degree %.2f, max %llu, "
              "gini %.3f\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              degrees.average_degree,
              static_cast<unsigned long long>(degrees.max_degree),
              pbfs::DegreeGini(graph));
  uint32_t largest = components.LargestComponent();
  std::printf("%u components, largest %.1f%% of vertices\n",
              components.num_components(),
              100.0 * components.vertex_count[largest] /
                  std::max<pbfs::Vertex>(1, graph.num_vertices()));
  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  pbfs::DiameterEstimate diameter = pbfs::EstimateDiameter(
      graph, pbfs::PickSources(graph, 1, 7)[0], &pool);
  std::printf("diameter >= %u (double sweep)\n", diameter.lower_bound);
  return 0;
}

int CmdBfs(int argc, char** argv) {
  std::string input;
  std::string variant = "bit";
  int64_t source = 0;
  int64_t threads = 4;
  pbfs::FlagParser flags("pbfs_tool bfs: run one BFS");
  flags.AddString("input", &input, "input path");
  flags.AddString("variant", &variant, "bit | byte | queue");
  flags.AddInt64("source", &source, "source vertex");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.Parse(argc, argv);
  pbfs::Graph graph;
  if (!LoadGraph(input, &graph)) {
    std::fprintf(stderr, "failed to read %s\n", input.c_str());
    return 1;
  }
  if (source < 0 || source >= graph.num_vertices()) {
    std::fprintf(stderr, "source out of range\n");
    return 1;
  }
  pbfs::SmsVariant sms_variant = pbfs::SmsVariant::kBit;
  if (variant == "byte") sms_variant = pbfs::SmsVariant::kByte;
  if (variant == "queue") sms_variant = pbfs::SmsVariant::kQueue;

  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  auto bfs = pbfs::MakeSmsPbfs(graph, sms_variant, &pool);
  std::vector<pbfs::Level> levels(graph.num_vertices());
  pbfs::Timer timer;
  pbfs::BfsResult result = bfs->Run(static_cast<pbfs::Vertex>(source),
                                    pbfs::BfsOptions{}, levels.data());
  double seconds = timer.ElapsedSeconds();

  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  pbfs::Vertex sources[] = {static_cast<pbfs::Vertex>(source)};
  std::printf("visited %llu vertices in %d iterations (%d bottom-up), "
              "%.3f ms, %.3f GTEPS\n",
              static_cast<unsigned long long>(result.vertices_visited),
              result.iterations, result.bottom_up_iterations,
              seconds * 1000.0,
              pbfs::Gteps(pbfs::TraversedEdges(components, sources),
                          seconds));
  std::vector<uint64_t> histogram;
  for (pbfs::Level l : levels) {
    if (l == pbfs::kLevelUnreached) continue;
    if (histogram.size() <= l) histogram.resize(l + 1, 0);
    ++histogram[l];
  }
  for (size_t d = 0; d < histogram.size(); ++d) {
    std::printf("  level %zu: %llu\n", d,
                static_cast<unsigned long long>(histogram[d]));
  }
  return 0;
}

int CmdCentrality(int argc, char** argv) {
  std::string input;
  std::string metric = "closeness";
  int64_t topk = 10;
  int64_t threads = 4;
  int64_t sample = 0;
  pbfs::FlagParser flags("pbfs_tool centrality: top-k central vertices");
  flags.AddString("input", &input, "input path");
  flags.AddString("metric", &metric, "closeness | harmonic | betweenness");
  flags.AddInt64("topk", &topk, "result count");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.AddInt64("sample", &sample, "0 = exact, else sampled sources");
  flags.Parse(argc, argv);
  pbfs::Graph graph;
  if (!LoadGraph(input, &graph)) {
    std::fprintf(stderr, "failed to read %s\n", input.c_str());
    return 1;
  }
  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});

  std::vector<double> scores;
  if (metric == "betweenness") {
    pbfs::BetweennessOptions options;
    options.sample_sources = static_cast<pbfs::Vertex>(sample);
    scores = pbfs::ComputeBetweenness(graph, &pool, options).score;
  } else {
    pbfs::ClosenessOptions options;
    options.sample_sources = static_cast<pbfs::Vertex>(sample);
    pbfs::ClosenessResult result =
        pbfs::ComputeCloseness(graph, &pool, options);
    if (metric == "harmonic") {
      scores = std::move(result.harmonic);
    } else if (metric == "closeness") {
      scores = std::move(result.score);
    } else {
      std::fprintf(stderr, "unknown --metric %s\n", metric.c_str());
      return 1;
    }
  }
  std::vector<pbfs::Vertex> top =
      pbfs::TopKByScore(scores, static_cast<int>(topk));
  std::printf("top-%zu by %s:\n", top.size(), metric.c_str());
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  #%zu vertex %u (degree %llu): %.6f\n", i + 1, top[i],
                static_cast<unsigned long long>(graph.Degree(top[i])),
                scores[top[i]]);
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: pbfs_tool <generate|convert|stats|bfs|centrality> "
               "[flags]\n  run a subcommand with --help for its flags\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand's FlagParser sees only its flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "bfs") return CmdBfs(sub_argc, sub_argv);
  if (command == "centrality") return CmdCentrality(sub_argc, sub_argv);
  PrintUsage();
  return 1;
}
