// Graph analyzer: one-stop structural report for a graph — degree
// distribution, connectivity, diameter estimate, exact eccentricities
// for small graphs, and BFS parent-tree extraction — exercising the
// analytics layer built on (S)MS-PBFS.
//
//   ./graph_analyzer [--input edges.txt | --scale N] [--threads T]

#include <algorithm>
#include <cstdio>
#include <string>

#include "algorithms/eccentricity.h"
#include "algorithms/parents.h"
#include "bfs/single_source.h"
#include "graph/components.h"
#include "graph/degree_stats.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sched/worker_pool.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  std::string input;
  int64_t scale = 13;
  int64_t threads = 4;
  int64_t exact_ecc_limit = 4096;
  pbfs::FlagParser flags("Structural graph report");
  flags.AddString("input", &input,
                  "text edge list; Kronecker graph generated if empty");
  flags.AddInt64("scale", &scale, "Kronecker scale when generating");
  flags.AddInt64("threads", &threads, "worker threads");
  flags.AddInt64("exact_ecc_limit", &exact_ecc_limit,
                 "compute exact eccentricities up to this vertex count");
  flags.Parse(argc, argv);

  pbfs::Graph graph;
  if (input.empty()) {
    graph = pbfs::Kronecker({.scale = static_cast<int>(scale),
                             .edge_factor = 16, .seed = 1});
    std::printf("generated Kronecker scale %lld\n",
                static_cast<long long>(scale));
  } else {
    std::vector<pbfs::Edge> edges;
    pbfs::Vertex n = 0;
    if (!pbfs::ReadEdgeListText(input, &edges, &n, /*renumber=*/true)) {
      std::fprintf(stderr, "failed to read %s\n", input.c_str());
      return 1;
    }
    graph = pbfs::Graph::FromEdges(n, edges);
    std::printf("loaded %s\n", input.c_str());
  }

  // --- Size and degrees ---------------------------------------------
  pbfs::DegreeStats degrees = pbfs::ComputeDegreeStats(graph);
  std::printf("\nsize: %u vertices (%u connected), %llu undirected edges, "
              "%.1f MB CSR\n",
              graph.num_vertices(), graph.NumConnectedVertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              static_cast<double>(graph.MemoryBytes()) / (1024.0 * 1024.0));
  std::printf("degrees: avg %.2f (connected %.2f), max %llu, gini %.3f\n",
              degrees.average_degree, degrees.average_connected,
              static_cast<unsigned long long>(degrees.max_degree),
              pbfs::DegreeGini(graph));
  std::printf("hub concentration: %u vertices cover half of all edge "
              "endpoints\n",
              degrees.half_edges_vertex_count);
  std::printf("degree histogram (log2 buckets):");
  for (size_t b = 0; b < degrees.log2_histogram.size(); ++b) {
    std::printf(" [2^%zu]=%u", b, degrees.log2_histogram[b]);
  }
  std::printf("\n");

  // --- Connectivity ---------------------------------------------------
  pbfs::ComponentInfo components = pbfs::ComputeComponents(graph);
  uint32_t largest = components.LargestComponent();
  std::printf("\nconnectivity: %u components; largest holds %u vertices "
              "(%.1f%%) and %llu edges\n",
              components.num_components(),
              components.vertex_count[largest],
              100.0 * components.vertex_count[largest] /
                  std::max<pbfs::Vertex>(1, graph.num_vertices()),
              static_cast<unsigned long long>(
                  components.edge_count[largest]));

  // --- Diameter --------------------------------------------------------
  pbfs::WorkerPool pool({.num_workers = static_cast<int>(threads)});
  pbfs::Vertex start = pbfs::PickSources(graph, 1, 7)[0];
  pbfs::DiameterEstimate diameter =
      pbfs::EstimateDiameter(graph, start, &pool);
  std::printf("\ndiameter: >= %u (double sweep, %d BFS runs; periphery "
              "%u <-> %u)\n",
              diameter.lower_bound, diameter.bfs_runs, diameter.periphery_a,
              diameter.periphery_b);

  if (graph.num_vertices() <= static_cast<pbfs::Vertex>(exact_ecc_limit)) {
    std::vector<pbfs::Level> ecc = pbfs::ExactEccentricities(graph, &pool);
    pbfs::Level radius = pbfs::kLevelUnreached;
    pbfs::Level exact_diameter = 0;
    for (pbfs::Level e : ecc) {
      if (e == pbfs::kLevelUnreached) continue;
      radius = std::min(radius, e);
      exact_diameter = std::max(exact_diameter, e);
    }
    std::printf("exact (all-pairs MS-PBFS): diameter %u, radius %u\n",
                exact_diameter, radius);
  }

  // --- BFS tree sample --------------------------------------------------
  auto bfs = pbfs::MakeSmsPbfs(graph, pbfs::SmsVariant::kBit, &pool);
  std::vector<pbfs::Level> levels(graph.num_vertices());
  bfs->Run(start, pbfs::BfsOptions{}, levels.data());
  std::vector<pbfs::Vertex> parents =
      pbfs::DeriveParentsParallel(graph, start, levels.data(), &pool);
  std::string error;
  bool ok = pbfs::ValidateParents(graph, start, parents, levels.data(),
                                  &error);
  std::printf("\nBFS tree from %u: %s%s\n", start,
              ok ? "valid parent array" : "INVALID: ", error.c_str());
  return ok ? 0 : 1;
}
